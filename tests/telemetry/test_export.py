"""Prometheus/JSON exporter: format, escaping, determinism, validator."""

import math

import pytest

from repro.telemetry.export import (
    escape_help,
    escape_label_value,
    format_value,
    to_json_snapshot,
    to_prometheus,
    validate_exposition,
    write_metrics,
)
from repro.telemetry.metrics import MetricsRegistry


def _sample_registry(order=("a", "b")):
    """A registry with counters/gauge/histogram; ``order`` controls
    label-insertion order to prove canonicalization."""
    reg = MetricsRegistry()
    c = reg.counter("ops_total", "operations by kind")
    for kind in order:
        c.inc(2, kind=kind, node=f"worker-{kind}")
    g = reg.gauge("queue_depth", "scheduler queue depth")
    g.set(3.5)
    h = reg.histogram("op_seconds", "operation latency",
                      buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    return reg


class TestFormat:
    def test_help_type_and_samples(self):
        text = to_prometheus(_sample_registry())
        lines = text.splitlines()
        assert "# HELP ops_total operations by kind" in lines
        assert "# TYPE ops_total counter" in lines
        assert "# TYPE op_seconds histogram" in lines
        assert 'ops_total{kind="a",node="worker-a"} 2' in lines
        assert "queue_depth 3.5" in lines
        assert text.endswith("\n")

    def test_histogram_series(self):
        text = to_prometheus(_sample_registry())
        lines = [ln for ln in text.splitlines()
                 if ln.startswith("op_seconds")]
        assert lines == [
            'op_seconds_bucket{le="0.1"} 1',
            'op_seconds_bucket{le="1"} 2',
            'op_seconds_bucket{le="10"} 3',
            'op_seconds_bucket{le="+Inf"} 4',
            "op_seconds_sum 55.55",
            "op_seconds_count 4",
        ]

    def test_metric_names_sorted(self):
        text = to_prometheus(_sample_registry())
        typed = [ln.split()[2] for ln in text.splitlines()
                 if ln.startswith("# TYPE")]
        assert typed == sorted(typed)

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_bad_metric_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("bad-name", "dashes are not legal")
        with pytest.raises(ValueError, match="bad-name"):
            to_prometheus(reg)


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_help_escapes(self):
        assert escape_help("line1\nline2\\x") == "line1\\nline2\\\\x"

    def test_escaped_document_validates(self):
        reg = MetricsRegistry()
        c = reg.counter("weird_total", 'help with \\ and\nnewline')
        c.inc(1, path='C:\\tmp\n"quoted"')
        text = to_prometheus(reg)
        assert validate_exposition(text) == []

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(3.5) == "3.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"
        assert float(format_value(0.1 + 0.2)) == 0.1 + 0.2


class TestDeterminism:
    def test_insertion_order_does_not_matter(self):
        assert to_prometheus(_sample_registry(("a", "b"))) == \
            to_prometheus(_sample_registry(("b", "a")))
        assert to_json_snapshot(_sample_registry(("a", "b"))) == \
            to_json_snapshot(_sample_registry(("b", "a")))

    def test_write_metrics_byte_identical(self, tmp_path):
        for fmt in ("json", "prom"):
            p1, p2 = tmp_path / f"m1.{fmt}", tmp_path / f"m2.{fmt}"
            write_metrics(str(p1), _sample_registry(("a", "b")), fmt=fmt)
            write_metrics(str(p2), _sample_registry(("b", "a")), fmt=fmt)
            assert p1.read_bytes() == p2.read_bytes()

    def test_write_metrics_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="yaml"):
            write_metrics(str(tmp_path / "m"), MetricsRegistry(),
                          fmt="yaml")


class TestValidator:
    def test_valid_document_passes(self):
        assert validate_exposition(to_prometheus(_sample_registry())) == []

    def test_missing_type_flagged(self):
        assert validate_exposition("orphan_total 1\n")

    def test_duplicate_series_flagged(self):
        text = ("# TYPE x counter\n"
                'x{a="1"} 1\n'
                'x{a="1"} 2\n')
        assert any("duplicate series" in p
                   for p in validate_exposition(text))

    def test_duplicate_label_flagged(self):
        text = '# TYPE x counter\nx{a="1",a="2"} 1\n'
        assert any("duplicate label" in p
                   for p in validate_exposition(text))

    def test_unparsable_sample_flagged(self):
        text = "# TYPE x counter\nx{oops 1\n"
        assert any("unparsable" in p or "malformed" in p
                   for p in validate_exposition(text))

    def test_histogram_bucket_order_checked(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 2\n'
                'h_bucket{le="0.5"} 1\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1\n"
                "h_count 3\n")
        assert any("ascending" in p for p in validate_exposition(text))

    def test_histogram_missing_inf_flagged(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 2\n'
                "h_sum 1\nh_count 2\n")
        assert any("+Inf" in p for p in validate_exposition(text))

    def test_histogram_decreasing_counts_flagged(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1\nh_count 5\n")
        assert any("decrease" in p for p in validate_exposition(text))

    def test_histogram_count_mismatch_flagged(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 4\n'
                "h_sum 1\nh_count 5\n")
        assert any("_count" in p for p in validate_exposition(text))

    def test_second_type_flagged(self):
        text = "# TYPE x counter\n# TYPE x counter\nx 1\n"
        assert any("second TYPE" in p for p in validate_exposition(text))

    def test_label_roundtrip_with_escapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "").inc(1, k='v with "quotes" and \\')
        assert validate_exposition(to_prometheus(reg)) == []

    def test_inf_sum_is_legal(self):
        reg = MetricsRegistry()
        reg.histogram("h", "", buckets=(1.0,)).observe(math.inf)
        text = to_prometheus(reg)
        assert "h_sum +Inf" in text
        assert validate_exposition(text) == []
