"""Event log: schema stamping, validation, gapless seq, file round-trip."""

import io
import json

import pytest

from repro.observe.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventLogWriter,
    read_events,
    validate_event,
    validate_event_log,
)


class TestWriter:
    def test_emit_stamps_schema_seq_ts(self):
        buf = io.StringIO()
        writer = EventLogWriter(buf)
        e1 = writer.emit("sweep_started", n_cells=3, jobs=2)
        e2 = writer.emit("sweep_finished", n_cells=3, n_failed=0,
                         wall_seconds=1.5)
        assert e1["schema"] == EVENT_SCHEMA_VERSION
        assert (e1["seq"], e2["seq"]) == (1, 2)
        assert isinstance(e1["ts"], float)
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "sweep_started"

    def test_unknown_kind_rejected(self):
        writer = EventLogWriter(io.StringIO())
        with pytest.raises(ValueError, match="unknown event kind"):
            writer.emit("cell_exploded")

    def test_malformed_event_refused(self):
        # cell_finished requires index/label/digest/wall_seconds.
        writer = EventLogWriter(io.StringIO())
        with pytest.raises(ValueError, match="malformed"):
            writer.emit("cell_finished", index=0)

    def test_path_target_owns_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path) as writer:
            writer.emit("sweep_started", n_cells=1, jobs=1)
        events = list(read_events(path))
        assert [e["kind"] for e in events] == ["sweep_started"]

    def test_stream_target_left_open(self):
        buf = io.StringIO()
        with EventLogWriter(buf) as writer:
            writer.emit("sweep_started", n_cells=1, jobs=1)
        assert not buf.closed


class TestValidateEvent:
    def _event(self, **over):
        base = {"schema": EVENT_SCHEMA_VERSION, "seq": 1, "ts": 0.0,
                "kind": "cell_scheduled", "index": 0, "label": "x",
                "digest": "a" * 64}
        base.update(over)
        return base

    def test_valid(self):
        assert validate_event(self._event()) == []

    def test_every_kind_has_requirements(self):
        # A bare common-fields event is only valid for kinds with no
        # extra requirements; every kind in EVENT_KINDS must be known.
        for kind in EVENT_KINDS:
            problems = validate_event(
                {"schema": EVENT_SCHEMA_VERSION, "seq": 1, "ts": 0.0,
                 "kind": kind})
            assert all("unknown kind" not in p for p in problems)

    def test_missing_common_field(self):
        assert any("missing required field" in p
                   for p in validate_event({"kind": "sweep_started"}))

    def test_wrong_schema(self):
        problems = validate_event(self._event(schema=99))
        assert any("schema" in p for p in problems)

    def test_bad_seq_and_index_types(self):
        assert any("seq" in p
                   for p in validate_event(self._event(seq=0)))
        assert any("index" in p
                   for p in validate_event(self._event(index="zero")))

    def test_short_digest(self):
        assert any("digest" in p
                   for p in validate_event(self._event(digest="ab")))


class TestValidateLog:
    def test_gapless_log_passes(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path) as writer:
            writer.emit("sweep_started", n_cells=1, jobs=1)
            writer.emit("cell_scheduled", index=0, label="x",
                        digest="a" * 64)
            writer.emit("sweep_finished", n_cells=1, n_failed=0,
                        wall_seconds=0.1)
        assert validate_event_log(path) == []

    def test_seq_gap_flagged(self, tmp_path):
        path = tmp_path / "events.jsonl"
        rows = [{"schema": 1, "seq": s, "ts": 0.0, "kind": "sweep_started",
                 "n_cells": 1, "jobs": 1} for s in (1, 3)]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert any("seq" in p for p in validate_event_log(str(path)))

    def test_expected_kind_missing(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path) as writer:
            writer.emit("sweep_started", n_cells=1, jobs=1)
        problems = validate_event_log(path,
                                      expect_kinds=["sweep_finished"])
        assert any("sweep_finished" in p for p in problems)

    def test_unreadable_log(self, tmp_path):
        bad = tmp_path / "events.jsonl"
        bad.write_text("{not json\n")
        assert validate_event_log(str(bad))
        assert validate_event_log(str(tmp_path / "absent.jsonl"))
