"""cProfile capture/merge and perf-history trend reporting."""

import json
from pathlib import Path

from repro.observe.perfhistory import (
    format_trend,
    load_history,
    trend_rows,
)
from repro.observe.profiles import (
    capture_profile,
    hotspot_report,
    merge_stats,
)


def _busy_work(n=200):
    return sum(i * i for i in range(n))


class TestProfiles:
    def test_capture_appends_table(self):
        sink = []
        with capture_profile(sink):
            _busy_work()
        assert len(sink) == 1
        assert isinstance(sink[0], dict) and sink[0]

    def test_capture_appends_even_on_error(self):
        sink = []
        try:
            with capture_profile(sink):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(sink) == 1

    def test_tables_survive_pickle_and_merge(self):
        import pickle
        sink = []
        for _ in range(2):
            with capture_profile(sink):
                _busy_work()
        tables = [pickle.loads(pickle.dumps(t)) for t in sink]
        merged = merge_stats(tables)
        assert merged is not None
        assert merged.total_calls >= sum(
            pstats_calls(t) for t in tables) // 2

    def test_merge_empty(self):
        assert merge_stats([]) is None

    def test_hotspot_report(self):
        sink = []
        with capture_profile(sink):
            _busy_work()
        report = hotspot_report(sink, top=5)
        assert "cumulative" in report
        assert "_busy_work" in report

    def test_hotspot_report_empty(self):
        assert hotspot_report([]) == "no profile data captured\n"


def pstats_calls(table):
    # Each value is (cc, nc, tt, ct, callers); nc is the call count.
    return sum(v[1] for v in table.values())


def _history_file(tmp_path, entries):
    path = tmp_path / "history.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in entries))
    return str(path)


def _entry(scale, **norms):
    return {"schema": 1, "ts": 0.0, "scale": scale,
            "results": {name: {"seconds": v * 2, "normalized": v}
                        for name, v in norms.items()}}


class TestPerfHistory:
    def test_load_skips_torn_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps(_entry("smoke", bench=1.0)) + "\n"
                        "{torn line\n"
                        "\n"
                        + json.dumps({"no_results": True}) + "\n"
                        + json.dumps(_entry("smoke", bench=2.0)) + "\n")
        entries = load_history(str(path))
        assert len(entries) == 2

    def test_load_missing_file(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []

    def test_trend_rows(self, tmp_path):
        path = _history_file(tmp_path, [
            _entry("smoke", event_loop=2.0, dag_build=1.0),
            _entry("smoke", event_loop=1.0, dag_build=1.5),
            _entry("full", event_loop=9.0),
        ])
        rows = trend_rows(load_history(path), scale="smoke")
        by_name = {r["name"]: r for r in rows}
        assert set(by_name) == {"event_loop", "dag_build"}
        ev = by_name["event_loop"]
        assert (ev["n"], ev["first"], ev["last"], ev["best"]) == \
            (2, 2.0, 1.0, 1.0)
        assert ev["delta_pct"] == -50.0

    def test_trend_all_scales_when_unfiltered(self, tmp_path):
        path = _history_file(tmp_path, [
            _entry("smoke", bench=1.0), _entry("full", bench=3.0)])
        rows = trend_rows(load_history(path))
        assert rows[0]["n"] == 2

    def test_format_trend_table(self, tmp_path):
        path = _history_file(tmp_path, [
            _entry("smoke", event_loop=2.0),
            _entry("smoke", event_loop=1.0),
        ])
        text = format_trend(load_history(path), scale="smoke")
        assert "event_loop" in text
        assert "-50.0%" in text

    def test_format_trend_empty(self):
        assert format_trend([], scale="nope").startswith(
            "no perf history entries")

    def test_sweep_scale_rows_coexist_with_old_entries(self, tmp_path):
        # The sweep tier added new benchmark names and a new scale
        # string to history.jsonl; rows written before it (same
        # schema, smoke/full scales only) must keep parsing and
        # trending unchanged alongside the new ones.
        old_row = json.dumps(_entry("smoke", event_loop=1.1,
                                    flownet_kernel=0.2))
        sweep_row = json.dumps(_entry("sweep", sweep_240_serial=23.8,
                                      sweep_240_jobs4=35.3,
                                      flownet_dense=1.4))
        path = tmp_path / "history.jsonl"
        path.write_text(old_row + "\n" + sweep_row + "\n")

        entries = load_history(str(path))
        assert len(entries) == 2
        smoke = {r["name"] for r in trend_rows(entries, scale="smoke")}
        assert smoke == {"event_loop", "flownet_kernel"}
        sweep = {r["name"] for r in trend_rows(entries, scale="sweep")}
        assert sweep == {"sweep_240_serial", "sweep_240_jobs4",
                         "flownet_dense"}
        # Unfiltered trending sees disjoint series, never a crash.
        assert {r["name"] for r in trend_rows(entries)} == smoke | sweep

    def test_repo_history_file_parses_every_row(self):
        # The committed history must never contain a row the loader
        # drops: all appended entries (including pre-sweep ones) carry
        # schema 1 and a results dict.
        path = Path(__file__).resolve().parents[2] \
            / "benchmarks" / "perf" / "history.jsonl"
        raw = [line for line in path.read_text().splitlines()
               if line.strip()]
        entries = load_history(str(path))
        assert len(entries) == len(raw)
        assert {e["schema"] for e in entries} == {1}
        assert {e["scale"] for e in entries} >= {"smoke", "sweep"}
