"""Flight recorder: ring bounds, crash bundles, postmortem summary."""

import pytest

from repro.experiments import ExperimentConfig
from repro.observe.flight import (
    BUNDLE_SCHEMA_VERSION,
    FlightRecorder,
    bundle_dirname,
    crash_bundle,
    load_crash_bundles,
    summarize_bundle,
    validate_bundle,
    write_crash_bundle,
)


def _config(**over):
    return ExperimentConfig("montage", "local", 1).with_(**over)


def _fill(recorder, n):
    for i in range(n):
        recorder.trace.emit(float(i), "task", "start", node="n0",
                            transformation=f"t{i}")


class TestRecorder:
    def test_ring_keeps_last_n(self):
        rec = FlightRecorder(capacity=4)
        _fill(rec, 10)
        assert rec.n_seen == 10
        rows = rec.ring_rows()
        assert len(rows) == 4
        assert [r["time"] for r in rows] == [6.0, 7.0, 8.0, 9.0]
        assert rows[-1]["fields"]["transformation"] == "t9"

    def test_partial_metrics_counted(self):
        rec = FlightRecorder(capacity=2)
        _fill(rec, 5)
        counter = rec.metrics.get("tasks_started_total")
        assert counter is not None
        assert counter.total() == 5

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_external_collector_adopted(self):
        from repro.simcore.tracing import TraceCollector
        trace = TraceCollector()
        rec = FlightRecorder(capacity=8, trace=trace)
        assert rec.trace is trace
        trace.emit(0.0, "task", "start", node="n0", transformation="t")
        assert rec.n_seen == 1


class TestBundle:
    def _bundle(self, with_flight=True):
        rec = None
        if with_flight:
            rec = FlightRecorder(capacity=4)
            _fill(rec, 6)
        try:
            raise RuntimeError("job mProject_3 failed 2 times")
        except RuntimeError as exc:
            return crash_bundle(_config(), 1, exc, rec)

    def test_fields(self):
        bundle = self._bundle()
        assert bundle["schema"] == BUNDLE_SCHEMA_VERSION
        assert bundle["kind"] == "crash_bundle"
        assert bundle["index"] == 1
        assert bundle["label"] == _config().label
        assert bundle["digest"] == _config().digest()
        assert bundle["config"]["app"] == "montage"
        assert bundle["error"]["type"] == "RuntimeError"
        assert "Traceback" in bundle["error"]["traceback"]
        assert bundle["flight"]["n_seen"] == 6
        assert len(bundle["flight"]["events"]) == 4
        assert validate_bundle(bundle) == []

    def test_without_recorder(self):
        bundle = self._bundle(with_flight=False)
        assert "flight" not in bundle
        assert validate_bundle(bundle) == []

    def test_validate_catches_problems(self):
        bundle = self._bundle()
        assert any("schema" in p for p in
                   validate_bundle({**bundle, "schema": 99}))
        assert any("missing field" in p for p in
                   validate_bundle({"schema": BUNDLE_SCHEMA_VERSION}))
        broken = {**bundle, "error": {"type": "X"}}
        assert any("error record" in p for p in validate_bundle(broken))

    def test_write_load_roundtrip(self, tmp_path):
        bundle = self._bundle()
        path = write_crash_bundle(str(tmp_path), bundle)
        assert path.endswith("bundle.json")
        assert bundle_dirname(bundle) in path
        loaded = load_crash_bundles(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0][0] == path
        assert loaded[0][1] == bundle

    def test_load_missing_dir(self, tmp_path):
        assert load_crash_bundles(str(tmp_path / "nope")) == []

    def test_load_sorted_by_index(self, tmp_path):
        try:
            raise ValueError("x")
        except ValueError as exc:
            for idx in (3, 0, 2):
                write_crash_bundle(
                    str(tmp_path),
                    crash_bundle(_config(seed=idx), idx, exc))
        indices = [b["index"]
                   for _, b in load_crash_bundles(str(tmp_path))]
        assert indices == [0, 2, 3]

    def test_summary_readable(self):
        bundle = self._bundle()
        text = summarize_bundle(bundle, tail=3)
        assert "RuntimeError: job mProject_3 failed 2 times" in text
        assert bundle["digest"][:12] in text
        assert "flight ring: last 4 of 6" in text
        assert "task/start" in text
        assert "tasks_started_total" in text
