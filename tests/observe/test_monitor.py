"""SweepMonitor: derived views, progress line, summary, event fan-out."""

import io

from repro.observe.events import EventLogWriter, read_events
from repro.observe.monitor import SweepMonitor, _fmt_rss


class _FakeClock:
    """Injectable time source the tests advance explicitly."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class _Cfg:
    def __init__(self, label: str = "montage/local/n1") -> None:
        self.label = label

    def digest(self) -> str:
        return "ab" * 32


def _monitor(**kwargs):
    clock = _FakeClock()
    mon = SweepMonitor(wall_clock=clock, mono_clock=clock,
                       stream=io.StringIO(), **kwargs)
    return mon, clock


class TestCounters:
    def test_occupancy_and_queue_depth(self):
        mon, _ = _monitor()
        mon.sweep_started(n_cells=4, jobs=2)
        for i in range(4):
            mon.cell_scheduled(i, _Cfg())
        assert (mon.queue_depth, mon.occupancy) == (4, 0)
        mon.cell_started(0, _Cfg())
        mon.cell_started(1, _Cfg())
        assert (mon.queue_depth, mon.occupancy) == (2, 2)
        mon.cell_finished(0, _Cfg(), wall_seconds=1.0)
        assert (mon.queue_depth, mon.occupancy, mon.n_done) == (2, 1, 1)

    def test_throughput_and_elapsed_frozen_at_end(self):
        mon, clock = _monitor()
        mon.sweep_started(n_cells=2, jobs=1)
        clock.advance(4.0)
        for i in range(2):
            mon.cell_scheduled(i, _Cfg())
            mon.cell_started(i, _Cfg())
            mon.cell_finished(i, _Cfg(), wall_seconds=2.0)
        assert mon.cells_per_sec() == 2 / 4.0
        mon.sweep_finished()
        clock.advance(100.0)
        assert mon.elapsed() == 4.0

    def test_failed_cells_tracked(self):
        mon, _ = _monitor()
        mon.sweep_started(n_cells=1, jobs=1)
        mon.cell_scheduled(0, _Cfg())
        mon.cell_started(0, _Cfg())
        mon.cell_failed(0, _Cfg(), error="ValueError: boom",
                        wall_seconds=0.5, bundle_path="/tmp/b")
        assert mon.n_failed == 1
        assert mon.failures[0]["error"] == "ValueError: boom"
        assert mon.failures[0]["bundle"] == "/tmp/b"

    def test_peak_rss_is_max_over_cells(self):
        mon, _ = _monitor()
        mon.sweep_started(n_cells=2, jobs=1)
        mon.cell_finished(0, _Cfg(), wall_seconds=1.0, peak_rss=10 << 20)
        mon.cell_finished(1, _Cfg(), wall_seconds=1.0, peak_rss=5 << 20)
        assert mon.peak_rss == 10 << 20


class TestProgress:
    def test_render_progress_fields(self):
        mon, clock = _monitor()
        mon.sweep_started(n_cells=20, jobs=4)
        clock.advance(6.0)
        for i in range(19):
            mon.cell_scheduled(i, _Cfg())
        for i in range(16):
            mon.cell_started(i, _Cfg())
        for i in range(11):
            mon.cell_finished(i, _Cfg(), wall_seconds=1.0,
                              peak_rss=36 << 20)
        mon.cell_failed(11, _Cfg(), error="boom")
        line = mon.render_progress()
        assert line.startswith("[sweep 12/20]")
        assert "ok=11" in line and "fail=1" in line
        assert "run=4" in line and "queue=3" in line
        assert "2.00 cells/s" in line and "eta=4s" in line
        assert "rss=36MiB" in line

    def test_progress_written_to_stream(self):
        mon, _ = _monitor(progress=True)
        mon.sweep_started(n_cells=1, jobs=1)
        mon.cell_scheduled(0, _Cfg())
        mon.cell_started(0, _Cfg())
        mon.cell_finished(0, _Cfg(), wall_seconds=1.0)
        mon.sweep_finished()
        out = mon.stream.getvalue()
        assert out.count("\r") >= 3
        assert out.endswith("\n")

    def test_no_progress_no_output(self):
        mon, _ = _monitor(progress=False)
        mon.sweep_started(n_cells=1, jobs=1)
        mon.sweep_finished()
        assert mon.stream.getvalue() == ""

    def test_fmt_rss(self):
        assert _fmt_rss(512 << 10) == "512KiB"
        assert _fmt_rss(36 << 20) == "36MiB"
        assert _fmt_rss(3 << 30) == "3.0GiB"


class TestSummaryAndEvents:
    def test_summary_contents(self):
        mon, clock = _monitor()
        mon.sweep_started(n_cells=3, jobs=2)
        clock.advance(2.0)
        for i, wall in enumerate((1.0, 3.0)):
            mon.cell_scheduled(i, _Cfg())
            mon.cell_started(i, _Cfg())
            mon.cell_finished(i, _Cfg(), wall_seconds=wall)
        mon.cell_scheduled(2, _Cfg())
        mon.cell_started(2, _Cfg())
        mon.cell_retried(2, _Cfg(), attempt=1)
        mon.cell_failed(2, _Cfg(), error="boom")
        summary = mon.sweep_finished()
        assert summary["n_finished"] == 2
        assert summary["n_failed"] == 1
        assert summary["n_retried"] == 1
        assert summary["latency_mean"] == 2.0
        assert summary["latency_max"] == 3.0
        assert summary["wall_seconds"] == 2.0
        assert len(summary["failures"]) == 1

    def test_events_fan_out(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLogWriter(path) as events:
            mon, _ = _monitor(events=events)
            mon.sweep_started(n_cells=1, jobs=1)
            mon.cell_scheduled(0, _Cfg())
            mon.cell_started(0, _Cfg())
            mon.cell_retried(0, _Cfg(), attempt=1)
            mon.cell_finished(0, _Cfg(), wall_seconds=0.5)
            mon.sweep_finished()
        kinds = [e["kind"] for e in read_events(path)]
        assert kinds == ["sweep_started", "cell_scheduled", "cell_started",
                        "cell_retried", "cell_finished", "sweep_finished"]

    def test_profile_stats_collected(self):
        mon, _ = _monitor()
        mon.add_profile_stats({("f.py", 1, "f"): (1, 1, 0.1, 0.1, {})})
        assert len(mon.profile_stats) == 1
