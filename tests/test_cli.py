"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "montage" in out and "glusterfs-nufa" in out
    assert "10429 tasks" in out


def test_run_command_small(capsys):
    # Epigenome on local is the fastest full-size cell (~0.1 s of sim).
    assert main(["run", "--app", "epigenome", "--storage", "local",
                 "--nodes", "1"]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "per-hour billing" in out


def test_run_command_rejects_invalid_cell(capsys):
    rc = main(["run", "--app", "epigenome", "--storage", "local",
               "--nodes", "4"])
    assert rc == 2
    assert "single node" in capsys.readouterr().err


def test_run_command_s3_reports_requests(capsys):
    assert main(["run", "--app", "epigenome", "--storage", "s3",
                 "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "S3 requests" in out and "GET" in out


def test_run_unknown_choices_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--app", "hpl", "--storage", "local"])
    with pytest.raises(SystemExit):
        main(["run", "--app", "montage", "--storage", "afs"])
