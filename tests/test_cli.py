"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "montage" in out and "glusterfs-nufa" in out
    assert "10429 tasks" in out


def test_run_command_small(capsys):
    # Epigenome on local is the fastest full-size cell (~0.1 s of sim).
    assert main(["run", "--app", "epigenome", "--storage", "local",
                 "--nodes", "1"]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "per-hour billing" in out


def test_run_command_rejects_invalid_cell(capsys):
    rc = main(["run", "--app", "epigenome", "--storage", "local",
               "--nodes", "4"])
    assert rc == 2
    assert "single node" in capsys.readouterr().err


def test_run_command_s3_reports_requests(capsys):
    assert main(["run", "--app", "epigenome", "--storage", "s3",
                 "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "S3 requests" in out and "GET" in out


def test_run_unknown_choices_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--app", "hpl", "--storage", "local"])
    with pytest.raises(SystemExit):
        main(["run", "--app", "montage", "--storage", "afs"])


# ---------------------------------------------------------------- telemetry

def test_run_trace_out_emits_valid_chrome_trace(tmp_path, capsys):
    """The ISSUE acceptance cell: broadband/nfs@4 --trace-out must
    produce a Chrome trace-event document that round-trips."""
    from repro.telemetry import load_chrome_trace

    trace_file = str(tmp_path / "t.json")
    assert main(["run", "--app", "broadband", "--storage", "nfs",
                 "--nodes", "4", "--trace-out", trace_file]) == 0
    assert "wrote" in capsys.readouterr().err
    doc = load_chrome_trace(trace_file)
    complete = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    assert len(complete) > 100
    categories = {ev.get("cat") for ev in complete}
    assert {"experiment", "workflow", "job", "phase",
            "storage_op"} <= categories
    # Timestamps/durations are microseconds and non-negative.
    assert all(ev["ts"] >= 0 and ev["dur"] >= 0 for ev in complete)
    # Every complete event sits on a named thread row.
    tids = {ev["tid"] for ev in doc["traceEvents"]
            if ev.get("name") == "thread_name"}
    assert all(ev["tid"] in tids for ev in complete)


def test_trace_command_summarizes(tmp_path, capsys):
    trace_file = str(tmp_path / "t.json")
    main(["run", "--app", "epigenome", "--storage", "nfs",
          "--nodes", "2", "--trace-out", trace_file])
    capsys.readouterr()
    assert main(["trace", trace_file, "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "spans covering" in out
    assert "longest spans" in out


def test_trace_command_rejects_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"no\": 1}")
    assert main(["trace", str(bad)]) == 2
    assert "error" in capsys.readouterr().err
    assert main(["trace", str(tmp_path / "missing.json")]) == 2


def test_run_metrics_out_and_timeline(tmp_path, capsys):
    import json

    metrics_file = str(tmp_path / "m.json")
    assert main(["run", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--metrics-out", metrics_file,
                 "--timeline"]) == 0
    captured = capsys.readouterr()
    snap = json.loads(open(metrics_file).read())
    assert snap["tasks_completed_total"]["kind"] == "counter"
    assert "task_duration_seconds" in snap
    assert "per-node job concurrency" in captured.out
    assert "CPU busy fraction" in captured.out
    assert "storage server load" in captured.out


# ---------------------------------------------------------------- faults

def test_run_with_storage_errors_prints_fault_summary(capsys):
    assert main(["run", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--storage-error-rate", "0.01",
                 "--retries", "5"]) == 0
    out = capsys.readouterr().out
    assert "faults:" in out
    assert "makespan" in out


def test_run_task_failure_rate_flag(capsys):
    assert main(["run", "--app", "epigenome", "--storage", "local",
                 "--nodes", "1", "--task-failure-rate", "0.05",
                 "--retries", "10"]) == 0
    assert "makespan" in capsys.readouterr().out


def test_run_fault_spec_file(tmp_path, capsys):
    from repro.faults import FaultSpec, OutageWindow

    spec_file = tmp_path / "faults.json"
    spec_file.write_text(FaultSpec(
        storage_outages=[OutageWindow(50.0, 80.0)]).to_json())
    assert main(["run", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--fault-spec", str(spec_file)]) == 0
    assert "faults:" in capsys.readouterr().out


def test_run_rejects_bad_fault_spec(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"bogus": 1}')
    assert main(["run", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--fault-spec", str(bad)]) == 2
    assert "bad fault spec" in capsys.readouterr().err


def test_faultsweep_command(capsys):
    assert main(["faultsweep", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--rates", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "inflation" in out
    assert "err_rate" in out


def test_faultsweep_csv_export(tmp_path, capsys):
    csv_file = str(tmp_path / "sweep.csv")
    assert main(["faultsweep", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--rates", "0.01", "--mtbfs", "600",
                 "--csv", csv_file]) == 0
    import csv
    rows = list(csv.DictReader(open(csv_file)))
    assert len(rows) == 3  # baseline + one rate + one mtbf
    assert rows[0]["inflation"] == "1.0"


# ---------------------------------------------------------------- observe

def test_run_metrics_out_prom_format(tmp_path, capsys):
    from repro.telemetry import validate_exposition

    metrics_file = tmp_path / "m.prom"
    assert main(["run", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--metrics-out", str(metrics_file),
                 "--metrics-format", "prom"]) == 0
    assert "(prom)" in capsys.readouterr().err
    text = metrics_file.read_text()
    assert "# TYPE tasks_completed_total counter" in text
    assert validate_exposition(text) == []


def test_faultsweep_with_observability(tmp_path, capsys):
    from repro.observe import read_events, validate_event_log

    events_file = str(tmp_path / "events.jsonl")
    assert main(["faultsweep", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--rates", "0.01",
                 "--events-out", events_file, "--progress"]) == 0
    err = capsys.readouterr().err
    assert "[sweep" in err and "cells/s" in err
    assert validate_event_log(events_file, expect_kinds=[
        "sweep_started", "cell_finished", "sweep_finished"]) == []
    # The event log covers the swept point, not the in-process baseline.
    finished = [e for e in read_events(events_file)
                if e["kind"] == "cell_finished"]
    assert len(finished) == 1


def test_faultsweep_failed_cell_one_line_summary(tmp_path, capsys):
    crash_dir = str(tmp_path / "crashes")
    rc = main(["faultsweep", "--app", "epigenome", "--storage", "nfs",
               "--nodes", "2", "--rates", "0.9", "--retries", "0",
               "--crash-dir", crash_dir])
    assert rc == 1
    err = capsys.readouterr().err
    line = next(ln for ln in err.splitlines()
                if ln.startswith("error:"))
    assert "1 sweep cell failed: cell 0 epigenome/nfs@2" in line
    assert "WorkflowFailedError" in line
    assert "Traceback" not in err
    assert "postmortem" in err

    # The bundle it pointed at is summarizable by the subcommand.
    capsys.readouterr()
    assert main(["postmortem", crash_dir]) == 0
    out = capsys.readouterr().out
    assert "1 crash bundle(s)" in out
    assert "WorkflowFailedError" in out
    assert "flight ring" in out


def test_faultsweep_keep_going_still_fails(capsys):
    rc = main(["faultsweep", "--app", "epigenome", "--storage", "nfs",
               "--nodes", "2", "--rates", "0.9", "--retries", "0",
               "--keep-going"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "inflation" in captured.out  # table still printed
    assert "1 sweep point(s) failed" in captured.err


def test_faultsweep_profile_prints_hotspots(capsys):
    assert main(["faultsweep", "--app", "epigenome", "--storage", "nfs",
                 "--nodes", "2", "--rates", "0.01",
                 "--profile", "cprofile", "--profile-top", "5"]) == 0
    err = capsys.readouterr().err
    assert "cumulative" in err


def test_postmortem_empty_dir(tmp_path, capsys):
    assert main(["postmortem", str(tmp_path)]) == 1
    assert "no crash bundles" in capsys.readouterr().err


def test_perf_trend_command(tmp_path, capsys):
    import json

    history = tmp_path / "history.jsonl"
    entries = [{"schema": 1, "ts": float(i), "scale": "smoke",
                "results": {"event_loop": {"seconds": 0.1,
                                           "normalized": 2.0 - i}}}
               for i in range(2)]
    history.write_text("".join(json.dumps(e) + "\n" for e in entries))
    assert main(["perf-trend", "--history", str(history)]) == 0
    out = capsys.readouterr().out
    assert "event_loop" in out and "-50.0%" in out


def test_perf_trend_missing_history(tmp_path, capsys):
    assert main(["perf-trend", "--history",
                 str(tmp_path / "absent.jsonl")]) == 1
    assert "no perf history" in capsys.readouterr().err
