"""Edge-case tests for the kernel: condition failures, interrupts
during waits, channel/network corner cases."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Environment,
    FairShareChannel,
    FlowNetwork,
    Interrupt,
    Link,
    Resource,
)


def test_allof_fails_fast_on_subevent_failure():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise ValueError("sub died")

    def waiter(env):
        p1 = env.process(failer(env))
        p2 = env.timeout(100.0)
        try:
            yield env.all_of([p1, p2])
        except ValueError as exc:
            caught.append((env.now, str(exc)))

    env.process(waiter(env))
    env.run()
    assert caught == [(1.0, "sub died")]


def test_anyof_failure_propagates():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    def waiter(env):
        try:
            yield env.any_of([env.process(failer(env)), env.timeout(50.0)])
        except RuntimeError:
            caught.append(env.now)

    env.process(waiter(env))
    env.run()
    assert caught == [1.0]


def test_condition_with_already_processed_events():
    env = Environment()
    log = []

    def proc(env):
        t = env.timeout(1.0, value="early")
        yield t                      # process it fully
        combined = env.all_of([t, env.timeout(1.0, value="late")])
        results = yield combined
        log.append(sorted(results.values()))

    env.process(proc(env))
    env.run()
    assert log == [["early", "late"]]


def test_interrupt_while_waiting_on_channel():
    env = Environment()
    ch = FairShareChannel(env)
    log = []

    def worker(env):
        try:
            yield ch.submit(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def killer(env, victim):
        yield env.timeout(5.0)
        victim.interrupt(cause="preempted")

    victim = env.process(worker(env))
    env.process(killer(env, victim))
    env.run()
    assert log == [(5.0, "preempted")]


def test_interrupt_while_queued_on_resource():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(100.0)
        res.release(req)

    def waiter(env):
        req = res.request()
        try:
            yield req
        except Interrupt:
            req.cancel()
            log.append(env.now)

    def killer(env, victim):
        yield env.timeout(3.0)
        victim.interrupt()

    env.process(holder(env))
    victim = env.process(waiter(env))
    env.process(killer(env, victim))
    env.run(until=10.0)
    assert log == [3.0]
    assert res.queue_length == 0


def test_mixed_events_and_processes_in_conditions():
    env = Environment()
    done = []

    def child(env):
        yield env.timeout(2.0)
        return "child-result"

    def parent(env):
        results = yield env.all_of([
            env.process(child(env)),
            env.timeout(1.0, value="timer"),
        ])
        done.append(sorted(str(v) for v in results.values()))

    env.process(parent(env))
    env.run()
    assert done == [["child-result", "timer"]]


def test_flow_to_same_endpoints_many_times():
    env = Environment()
    net = FlowNetwork(env)
    a, b = Link("a", 100.0), Link("b", 100.0)
    count = [0]

    def proc(env):
        for _ in range(50):
            yield net.transfer([a, b], 10.0)
            count[0] += 1

    env.process(proc(env))
    env.run()
    assert count[0] == 50
    assert env.now == pytest.approx(5.0)


def test_channel_burst_of_zero_and_nonzero_work():
    env = Environment()
    ch = FairShareChannel(env)
    done = []

    def proc(env, w):
        yield ch.submit(w)
        done.append(w)

    for w in (0.0, 1.0, 0.0, 2.0, 0.0):
        env.process(proc(env, w))
    env.run()
    assert sorted(done) == [0.0, 0.0, 0.0, 1.0, 2.0]


def test_nested_interrupt_handler_continues_working():
    env = Environment()
    log = []

    def resilient(env):
        for attempt in range(3):
            try:
                yield env.timeout(10.0)
                log.append(("slept", env.now))
                return
            except Interrupt:
                log.append(("interrupted", env.now))

    def pest(env, victim):
        for _ in range(2):
            yield env.timeout(1.0)
            victim.interrupt()

    victim = env.process(resilient(env))
    env.process(pest(env, victim))
    env.run()
    assert log == [("interrupted", 1.0), ("interrupted", 2.0),
                   ("slept", 12.0)]
