"""Store/Container getter cancellation (crash-recovery plumbing)."""

import pytest

from repro.simcore import Environment
from repro.simcore.errors import NotPending
from repro.simcore.resources import Container, Store


def test_store_cancel_get_removes_the_getter():
    env = Environment()
    store = Store(env)
    ev = store.get()
    assert not ev.triggered
    store.cancel_get(ev)
    # A later put is not consumed by the cancelled getter.
    store.put("x")
    env.run()
    assert store.items == ["x"]


def test_store_cancel_get_rejects_triggered_event():
    env = Environment()
    store = Store(env)
    store.put("x")
    ev = store.get()
    assert ev.triggered
    with pytest.raises(NotPending):
        store.cancel_get(ev)
    env.run()


def test_store_cancel_get_unknown_event_raises():
    env = Environment()
    store = Store(env)
    other = Store(env)
    ev = other.get()
    with pytest.raises(ValueError):
        store.cancel_get(ev)
    other.cancel_get(ev)


def test_store_cancel_preserves_fifo_for_remaining_getters():
    env = Environment()
    store = Store(env)
    first, second, third = store.get(), store.get(), store.get()
    store.cancel_get(first)
    store.put("a")
    store.put("b")
    env.run()
    assert second.value == "a"
    assert third.value == "b"


def test_container_cancel_get_restores_no_claim():
    env = Environment()
    tank = Container(env, capacity=10.0, init=2.0)
    ev = tank.get(5.0)  # blocked: only 2 available
    assert not ev.triggered
    tank.cancel_get(ev)
    tank.put(3.0)
    env.run()
    assert tank.level == 5.0  # nothing consumed by the dead getter


def test_container_cancel_get_rejects_triggered_event():
    env = Environment()
    tank = Container(env, capacity=10.0, init=5.0)
    ev = tank.get(1.0)
    assert ev.triggered
    with pytest.raises(NotPending):
        tank.cancel_get(ev)
    env.run()


def test_container_cancel_unblocks_later_getters():
    env = Environment()
    tank = Container(env, capacity=10.0, init=4.0)
    big = tank.get(6.0)     # blocked, head of FIFO
    small = tank.get(3.0)   # queued behind it
    assert not small.triggered
    tank.cancel_get(big)    # head withdrawn -> small can settle
    env.run()
    assert small.triggered
    assert tank.level == 1.0
