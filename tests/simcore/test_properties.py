"""Property-based tests for the simulation kernel's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Environment, FairShareChannel, FlowNetwork, Link


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),   # arrival
    st.floats(min_value=0.01, max_value=30.0, allow_nan=False),  # work
), min_size=1, max_size=20))
def test_channel_work_conservation(jobs):
    """A PS channel (beta=0) is work-conserving: the last completion is
    never earlier than total work after the last arrival gap, and total
    delivered service equals total submitted work."""
    env = Environment()
    ch = FairShareChannel(env)
    finish = []

    def proc(arrival, work):
        yield env.timeout(arrival)
        yield ch.submit(work)
        finish.append(env.now)

    for arrival, work in jobs:
        env.process(proc(arrival, work))
    env.run()
    assert len(finish) == len(jobs)
    total_work = sum(w for _, w in jobs)
    assert ch.total_work_done == pytest.approx(total_work, rel=1e-6)
    # Completion can't beat the dedicated-service bound.
    first_arrival = min(a for a, _ in jobs)
    assert max(finish) >= first_arrival + total_work * 0.999 \
        or max(a for a, _ in jobs) > first_arrival


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    st.floats(min_value=0.01, max_value=30.0, allow_nan=False),
), min_size=1, max_size=15),
    st.floats(min_value=0.0, max_value=0.4))
def test_channel_contention_never_speeds_up(jobs, beta):
    """Adding a contention penalty can only delay completions."""

    def run_with(beta_value):
        env = Environment()
        ch = FairShareChannel(env, contention_beta=beta_value)
        finish = {}

        def proc(i, arrival, work):
            yield env.timeout(arrival)
            yield ch.submit(work)
            finish[i] = env.now

        for i, (a, w) in enumerate(jobs):
            env.process(proc(i, a, w))
        env.run()
        return finish

    ideal = run_with(0.0)
    penalised = run_with(beta)
    for i in ideal:
        assert penalised[i] >= ideal[i] - 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1,
                max_size=12),
       st.floats(min_value=10.0, max_value=200.0))
def test_flownet_shared_link_conservation(sizes, capacity):
    """Flows sharing one link: busy-period throughput equals capacity,
    so the last completion is exactly total bytes / capacity when all
    flows start together."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", capacity)
    finish = []

    def proc(nbytes):
        yield net.transfer([link], nbytes)
        finish.append(env.now)

    for s in sizes:
        env.process(proc(s))
    env.run()
    assert max(finish) == pytest.approx(sum(sizes) / capacity, rel=1e-6)
    assert net.total_bytes_moved == pytest.approx(sum(sizes), rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 8), st.floats(min_value=10.0, max_value=500.0))
def test_flownet_fair_split_equal_flows(n, capacity):
    """n identical flows over one link all finish together at n*size/C."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", capacity)
    size = 100.0
    finish = []

    def proc():
        yield net.transfer([link], size)
        finish.append(env.now)

    for _ in range(n):
        env.process(proc())
    env.run()
    expected = n * size / capacity
    assert all(t == pytest.approx(expected, rel=1e-6) for t in finish)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 6), st.integers(1, 5))
def test_flownet_bottleneck_respected(n_flows, ratio):
    """No flow ever moves faster than its narrowest link allows."""
    env = Environment()
    net = FlowNetwork(env)
    wide = Link("wide", 100.0 * ratio)
    finish = []

    def proc(i):
        narrow = Link(f"n{i}", 10.0)
        t0 = env.now
        yield net.transfer([wide, narrow], 100.0)
        finish.append(env.now - t0)

    for i in range(n_flows):
        env.process(proc(i))
    env.run()
    for t in finish:
        assert t >= 100.0 / 10.0 - 1e-6  # narrow-link bound
