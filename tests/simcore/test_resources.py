"""Unit tests for Resource, PriorityResource, Container, Store."""

import pytest

from repro.simcore import (
    Container,
    Environment,
    NotPending,
    PriorityResource,
    Resource,
    Store,
)


# ---------------------------------------------------------------- Resource

def test_resource_basic_acquire_release():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, res, tag, hold):
        req = res.request()
        yield req
        log.append((tag, "got", env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(user(env, res, "a", 5.0))
    env.process(user(env, res, "b", 5.0))
    env.run()
    assert log == [("a", "got", 0.0), ("b", "got", 5.0)]


def test_resource_capacity_allows_concurrency():
    env = Environment()
    res = Resource(env, capacity=3)
    got_times = []

    def user(env):
        req = res.request()
        yield req
        got_times.append(env.now)
        yield env.timeout(10.0)
        res.release(req)

    for _ in range(5):
        env.process(user(env))
    env.run()
    assert got_times == [0.0, 0.0, 0.0, 10.0, 10.0]


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=4)

    def user(env):
        req = res.request(2)
        yield req
        yield env.timeout(1.0)
        res.release(req)

    env.process(user(env))
    env.process(user(env))
    env.process(user(env))
    env.run(until=0.5)
    assert res.in_use == 4
    assert res.available == 0
    assert res.queue_length == 1
    env.run()
    assert res.in_use == 0


def test_resource_invalid_amounts():
    env = Environment()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.request(0)
    with pytest.raises(ValueError):
        res.request(3)
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_ungranted_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()  # take the unit
    waiting = res.request()
    with pytest.raises(NotPending):
        res.release(waiting)


def test_resource_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    env.run()
    assert held.triggered
    waiting = res.request()
    waiting.cancel()
    assert res.queue_length == 0


def test_resource_no_overtaking():
    """A large request at the head blocks later small ones (FIFO)."""
    env = Environment()
    res = Resource(env, capacity=2)
    order = []

    def holder(env):
        req = res.request(2)
        yield req
        order.append("holder")
        yield env.timeout(10.0)
        res.release(req)

    def big(env):
        yield env.timeout(1.0)
        req = res.request(2)
        yield req
        order.append("big")
        yield env.timeout(1.0)
        res.release(req)

    def small(env):
        yield env.timeout(2.0)  # arrives after big
        req = res.request(1)
        yield req
        order.append("small")
        res.release(req)

    env.process(holder(env))
    env.process(big(env))
    env.process(small(env))
    env.run()
    assert order == ["holder", "big", "small"]


# ------------------------------------------------------- PriorityResource

def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def user(env, prio, tag, delay):
        yield env.timeout(delay)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder(env))
    env.process(user(env, 5, "low", 1.0))
    env.process(user(env, 1, "high", 2.0))
    env.run()
    assert order == ["high", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def user(env, tag, delay):
        yield env.timeout(delay)
        req = res.request(priority=1)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder(env))
    env.process(user(env, "first", 1.0))
    env.process(user(env, "second", 2.0))
    env.run()
    assert order == ["first", "second"]


# --------------------------------------------------------------- Container

def test_container_put_get():
    env = Environment()
    c = Container(env, capacity=100.0, init=10.0)
    log = []

    def getter(env):
        yield c.get(30.0)
        log.append(("got", env.now, c.level))

    def putter(env):
        yield env.timeout(2.0)
        yield c.put(25.0)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert log == [("got", 2.0, 5.0)]


def test_container_put_blocks_at_capacity():
    env = Environment()
    c = Container(env, capacity=10.0, init=10.0)
    log = []

    def putter(env):
        yield c.put(5.0)
        log.append(env.now)

    def getter(env):
        yield env.timeout(3.0)
        yield c.get(5.0)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert log == [3.0]
    assert c.level == 10.0


def test_container_memory_gate_pattern():
    """Models Broadband memory limiting: 7 GB node, 2 GB tasks -> 3 at once."""
    env = Environment()
    mem = Container(env, capacity=7.0, init=7.0)
    concurrency = []
    running = [0]

    def task(env):
        yield mem.get(2.0)
        running[0] += 1
        concurrency.append(running[0])
        yield env.timeout(10.0)
        running[0] -= 1
        yield mem.put(2.0)

    for _ in range(6):
        env.process(task(env))
    env.run()
    assert max(concurrency) == 3


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=-1.0)
    with pytest.raises(ValueError):
        Container(env, capacity=5.0, init=6.0)
    c = Container(env, capacity=5.0)
    with pytest.raises(ValueError):
        c.put(-1.0)
    with pytest.raises(ValueError):
        c.get(-1.0)


# ------------------------------------------------------------------- Store

def test_store_fifo_order():
    env = Environment()
    s = Store(env)
    received = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1.0)
            yield s.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield s.get()
            received.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_blocks_until_put():
    env = Environment()
    s = Store(env)
    log = []

    def consumer(env):
        item = yield s.get()
        log.append((env.now, item))

    def producer(env):
        yield env.timeout(7.0)
        yield s.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [(7.0, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    s = Store(env, capacity=1)
    log = []

    def producer(env):
        yield s.put("a")
        log.append(("a", env.now))
        yield s.put("b")
        log.append(("b", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        yield s.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("a", 0.0), ("b", 5.0)]
