"""Unit tests for trace collection and deterministic random streams."""

import numpy as np
import pytest

from repro.simcore import NULL_COLLECTOR, TraceCollector, jittered, substream


def test_emit_and_select():
    tc = TraceCollector()
    tc.emit(1.0, "task", "start", task="t1", node="n0")
    tc.emit(2.0, "task", "end", task="t1", node="n0")
    tc.emit(1.5, "storage", "read", nbytes=100)
    assert len(tc) == 3
    assert len(tc.select("task")) == 2
    assert len(tc.select("task", "start")) == 1
    assert tc.select("task", task="t1")[0].get("node") == "n0"


def test_count_and_sum():
    tc = TraceCollector()
    for i in range(5):
        tc.emit(float(i), "storage", "read", nbytes=10.0 * i)
    assert tc.count("storage", "read") == 5
    assert tc.sum_field("nbytes", "storage", "read") == pytest.approx(100.0)


def test_field_filter_mismatch():
    tc = TraceCollector()
    tc.emit(0.0, "a", "x", k=1)
    assert tc.count("a", "x", k=2) == 0


def test_disabled_collector_drops_everything():
    tc = TraceCollector(enabled=False)
    tc.emit(0.0, "a", "x")
    assert len(tc) == 0
    NULL_COLLECTOR.emit(0.0, "a", "x")
    assert len(NULL_COLLECTOR) == 0


def test_subscribe_sees_records():
    tc = TraceCollector()
    seen = []
    tc.subscribe(seen.append)
    tc.emit(0.0, "a", "x", v=3)
    assert len(seen) == 1 and seen[0].get("v") == 3


def test_clear_keeps_subscribers():
    tc = TraceCollector()
    seen = []
    tc.subscribe(seen.append)
    tc.emit(0.0, "a", "x")
    tc.clear()
    assert len(tc) == 0
    tc.emit(1.0, "a", "y")
    assert len(seen) == 2


def test_record_get_default():
    tc = TraceCollector()
    tc.emit(0.0, "a", "x")
    assert tc.records[0].get("missing", 42) == 42


def test_reset_drops_records_and_subscribers():
    tc = TraceCollector()
    seen = []
    tc.subscribe(seen.append)
    tc.emit(0.0, "a", "x")
    tc.reset()
    assert len(tc) == 0
    assert tc.n_subscribers == 0
    tc.emit(1.0, "a", "y")
    assert len(seen) == 1  # only the pre-reset record was delivered


def test_unsubscribe_removes_callback():
    tc = TraceCollector()
    seen = []
    tc.subscribe(seen.append)
    tc.unsubscribe(seen.append)
    tc.unsubscribe(seen.append)  # absent callback is a no-op
    tc.emit(0.0, "a", "x")
    assert seen == []


def test_null_collector_rejects_subscriptions():
    """Subscribing to the shared NULL_COLLECTOR must not retain the
    callback — it would leak across every untraced run."""
    before = NULL_COLLECTOR.n_subscribers
    NULL_COLLECTOR.subscribe(lambda rec: None)
    assert NULL_COLLECTOR.n_subscribers == before == 0


def test_clear_drops_indexes_with_records():
    tc = TraceCollector()
    tc.emit(0.0, "task", "start", task="t1")
    tc.clear()
    assert tc.select("task", "start") == []
    assert tc.count("task") == 0
    assert tc.sum_field("nbytes", "task") == 0.0
    # New emits after clear() are indexed fresh.
    tc.emit(1.0, "task", "start", task="t2")
    assert tc.count("task", "start") == 1


def test_index_consistency_with_linear_scan():
    """Indexed select/count/sum_field must agree with a full scan."""
    tc = TraceCollector()
    cats = ("task", "storage", "disk")
    evs = ("start", "end")
    for i in range(60):
        tc.emit(float(i), cats[i % 3], evs[i % 2], nbytes=float(i), k=i % 5)
    for cat in cats + (None,):
        for ev in evs + (None,):
            expect = [r for r in tc.records
                      if (cat is None or r.category == cat)
                      and (ev is None or r.event == ev)]
            assert tc.select(cat, ev) == expect
            assert tc.count(cat, ev) == len(expect)
            assert tc.sum_field("nbytes", cat, ev) == pytest.approx(
                sum(r.get("nbytes", 0.0) for r in expect))
    # Field filters still apply on top of the index.
    assert tc.select("task", "start", k=0) == \
        [r for r in tc.records if r.category == "task"
         and r.event == "start" and r.get("k") == 0]


def test_select_returns_copy_not_index():
    tc = TraceCollector()
    tc.emit(0.0, "a", "x")
    rows = tc.select("a", "x")
    rows.clear()  # mutating the result must not corrupt the index
    assert tc.count("a", "x") == 1


# ----------------------------------------------------------------- rand

def test_substream_reproducible():
    a = substream(7, "disk", 0).random(5)
    b = substream(7, "disk", 0).random(5)
    assert np.allclose(a, b)


def test_substream_independent_names():
    a = substream(7, "disk", 0).random(5)
    b = substream(7, "disk", 1).random(5)
    assert not np.allclose(a, b)


def test_substream_seed_changes_stream():
    a = substream(1, "x").random(5)
    b = substream(2, "x").random(5)
    assert not np.allclose(a, b)


def test_jittered_deterministic_without_rng():
    assert jittered(None, 10.0, 0.5) == 10.0
    rng = substream(0, "j")
    assert jittered(rng, 10.0, 0.0) == 10.0


def test_jittered_stays_positive():
    rng = substream(0, "j")
    vals = [jittered(rng, 10.0, 0.5) for _ in range(1000)]
    assert all(v > 0 for v in vals)
    # Mean should remain near the nominal value.
    assert 8.0 < float(np.mean(vals)) < 12.0
