"""Unit tests for the processor-sharing channel."""

import pytest

from repro.simcore import Environment, FairShareChannel


def test_single_job_runs_at_full_rate():
    env = Environment()
    ch = FairShareChannel(env)
    done = []

    def proc(env):
        yield ch.submit(10.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(10.0)]


def test_two_equal_jobs_share_equally():
    env = Environment()
    ch = FairShareChannel(env)
    done = []

    def proc(env, tag):
        yield ch.submit(10.0)
        done.append((tag, env.now))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    # Both present from t=0, each at rate 1/2 -> both finish at 20.
    assert [t for _, t in done] == [pytest.approx(20.0), pytest.approx(20.0)]


def test_short_job_departure_speeds_up_long_job():
    env = Environment()
    ch = FairShareChannel(env)
    finish = {}

    def proc(env, tag, work):
        yield ch.submit(work)
        finish[tag] = env.now

    env.process(proc(env, "short", 5.0))
    env.process(proc(env, "long", 10.0))
    env.run()
    # Shared until short has done 5 units: at rate 1/2 that is t=10.
    # Long then has 5 left at full rate: finishes at 15.
    assert finish["short"] == pytest.approx(10.0)
    assert finish["long"] == pytest.approx(15.0)


def test_late_arrival_slows_existing_job():
    env = Environment()
    ch = FairShareChannel(env)
    finish = {}

    def first(env):
        yield ch.submit(10.0)
        finish["first"] = env.now

    def second(env):
        yield env.timeout(5.0)
        yield ch.submit(10.0)
        finish["second"] = env.now

    env.process(first(env))
    env.process(second(env))
    env.run()
    # first: 5 done alone by t=5, remaining 5 at rate 1/2 -> t=15.
    # second: 5 done by t=15 (rate 1/2), remaining 5 alone -> t=20.
    assert finish["first"] == pytest.approx(15.0)
    assert finish["second"] == pytest.approx(20.0)


def test_zero_work_completes_immediately():
    env = Environment()
    ch = FairShareChannel(env)
    done = []

    def proc(env):
        yield ch.submit(0.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_negative_or_nan_work_rejected():
    env = Environment()
    ch = FairShareChannel(env)
    with pytest.raises(ValueError):
        ch.submit(-1.0)
    with pytest.raises(ValueError):
        ch.submit(float("nan"))
    with pytest.raises(ValueError):
        ch.submit(float("inf"))


def test_conservation_of_work():
    """Total completion time of a batch equals total work (work-conserving)."""
    env = Environment()
    ch = FairShareChannel(env)
    works = [1.0, 2.0, 3.0, 4.0]
    last = []

    def proc(env, w):
        yield ch.submit(w)
        last.append(env.now)

    for w in works:
        env.process(proc(env, w))
    env.run()
    # PS is work conserving: the last completion is exactly sum(works).
    assert max(last) == pytest.approx(sum(works))
    assert ch.total_work_done == pytest.approx(sum(works))


def test_utilisation_counters():
    env = Environment()
    ch = FairShareChannel(env)

    def proc(env):
        yield ch.submit(4.0)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert ch.total_ops == 2
    assert ch.total_work_done == pytest.approx(8.0)
    assert ch.active_ops == 0


def test_many_staggered_jobs_all_complete():
    env = Environment()
    ch = FairShareChannel(env)
    completed = []

    def proc(env, i):
        yield env.timeout(i * 0.1)
        yield ch.submit(1.0 + (i % 5))
        completed.append(i)

    for i in range(100):
        env.process(proc(env, i))
    env.run()
    assert len(completed) == 100
