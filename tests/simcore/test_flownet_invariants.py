"""Randomized invariants for the incremental max-min reallocator.

The fast path in :mod:`repro.simcore.flownet` refills only the link
component touched by an arriving/finishing flow instead of the whole
network.  These tests pin its correctness against an independent
brute-force progressive-filling reference:

* after any sequence of arrivals, live rates equal a from-scratch
  water-filling of the full network;
* no link ever carries more than its capacity;
* per-flow ``max_rate`` ceilings are always honored;
* ``total_bytes_moved`` equals the sum of payload sizes once all
  transfers complete (regression for the final-wake overshoot clamp).
"""

import random

import pytest

from repro.simcore import Environment, FlowNetwork, Link

#: Huge payload so no flow finishes while we inspect steady-state rates.
_NEVER_FINISH = 1e18


def reference_fill(specs):
    """Brute-force max-min progressive filling, independent of the kernel.

    ``specs`` is a list of ``(links, max_rate)`` tuples; returns the
    fair rate for each flow, in order.  Every round raises all active
    flows uniformly until a link saturates or a flow hits its ceiling,
    freezes the constrained flows, and repeats — O(flows * links) per
    round, no incremental tricks.
    """
    n = len(specs)
    rates = [0.0] * n
    active = set(range(n))
    members = {}
    for idx, (links, _cap) in enumerate(specs):
        for link in links:
            members.setdefault(link, []).append(idx)

    while active:
        delta = float("inf")
        for link, flows_on in members.items():
            n_active = sum(1 for i in flows_on if i in active)
            if n_active:
                residual = link.capacity - sum(rates[i] for i in flows_on)
                delta = min(delta, residual / n_active)
        for i in active:
            cap = specs[i][1]
            if cap is not None:
                delta = min(delta, cap - rates[i])
        if delta == float("inf"):  # pragma: no cover - flows without links
            break
        for i in active:
            rates[i] += delta

        frozen = set()
        for i in active:
            cap = specs[i][1]
            if cap is not None and rates[i] >= cap * (1 - 1e-12):
                frozen.add(i)
        for link, flows_on in members.items():
            used = sum(rates[i] for i in flows_on)
            if used >= link.capacity * (1 - 1e-12):
                frozen.update(i for i in flows_on if i in active)
        if not frozen:  # pragma: no cover - numerical safety valve
            break
        active -= frozen
    return rates


def _random_network(rng):
    """A random topology plus flow specs routed over it."""
    n_links = rng.randint(2, 8)
    links = [Link(f"l{i}", rng.choice([1e6, 5e6, 2.5e7, 1e8]))
             for i in range(n_links)]
    specs = []
    for _ in range(rng.randint(1, 14)):
        path = rng.sample(links, rng.randint(1, min(3, n_links)))
        cap = rng.choice([None, None, None, 2e5, 1.5e6, 8e6])
        specs.append((tuple(path), cap))
    return links, specs


def _assert_invariants(net, links, specs):
    flows = list(net._flows)
    assert len(flows) == len(specs)
    for link in links:
        carried = sum(f.rate for f in link._flows)
        assert carried <= link.capacity * (1 + 1e-9), link
    for flow, (_path, cap) in zip(flows, specs):
        if cap is not None:
            assert flow.rate <= cap * (1 + 1e-9)


@pytest.mark.parametrize("trial", range(25))
def test_random_topology_matches_reference(trial):
    """Steady-state rates equal an independent water-filling."""
    rng = random.Random(9000 + trial)
    env = Environment()
    net = FlowNetwork(env)
    links, specs = _random_network(rng)
    for path, cap in specs:
        net.transfer(path, _NEVER_FINISH, max_rate=cap)

    _assert_invariants(net, links, specs)
    want = reference_fill(specs)
    for flow, expected in zip(net._flows, want):
        assert flow.rate == pytest.approx(expected, rel=1e-6, abs=1e-3)


@pytest.mark.parametrize("trial", range(10))
def test_incremental_arrivals_match_full_refill(trial):
    """After *every* arrival the (component-restricted) fill must equal
    a from-scratch fill of the whole network — the core claim of the
    incremental reallocator."""
    rng = random.Random(4100 + trial)
    env = Environment()
    net = FlowNetwork(env)
    links, specs = _random_network(rng)
    for step in range(len(specs)):
        path, cap = specs[step]
        net.transfer(path, _NEVER_FINISH, max_rate=cap)
        want = reference_fill(specs[:step + 1])
        for flow, expected in zip(net._flows, want):
            assert flow.rate == pytest.approx(expected, rel=1e-6, abs=1e-3)
    _assert_invariants(net, links, specs)


@pytest.mark.parametrize("trial", range(10))
def test_completion_churn_preserves_invariants(trial):
    """Finite flows arriving in waves: survivors stay max-min fair and
    capacity-respecting as earlier flows drain out."""
    rng = random.Random(7300 + trial)
    env = Environment()
    net = FlowNetwork(env)
    n_links = rng.randint(2, 6)
    links = [Link(f"l{i}", rng.choice([1e6, 1e7])) for i in range(n_links)]
    sizes = []

    def driver():
        pending = []
        for _ in range(rng.randint(5, 20)):
            path = rng.sample(links, rng.randint(1, 2))
            nbytes = rng.uniform(1e5, 5e7)
            sizes.append(nbytes)
            pending.append(net.transfer(path, nbytes))
            # Live mid-churn invariants after each arrival.
            for link in links:
                carried = sum(f.rate for f in link._flows)
                assert carried <= link.capacity * (1 + 1e-9)
            if rng.random() < 0.4:
                yield env.timeout(rng.uniform(0.01, 2.0))
        yield env.all_of(pending)

    env.process(driver())
    env.run()
    assert not net._flows
    assert net.total_bytes_moved == pytest.approx(sum(sizes), rel=1e-9)


def test_total_bytes_moved_is_clamped_to_payload():
    """The final wake lands a hair past the true finish; the delivered
    counter must clamp to the payload instead of overshooting."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("lan", 1.25e8)
    sizes = [3e9, 1.7e9, 9e8, 5.5e8]

    def driver():
        yield env.all_of([net.transfer((link,), size) for size in sizes])

    env.process(driver())
    env.run()
    assert net.total_bytes_moved == pytest.approx(sum(sizes), rel=1e-12)


def test_max_rate_cap_respected_under_churn():
    """A capped flow never exceeds its ceiling even as competitors
    come and go and spare bandwidth opens up."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("wan", 1e8)
    capped = None
    observed = []

    def sampler():
        while True:
            flows = list(net._flows)
            if not flows:
                return
            observed.append(flows[0].rate)
            yield env.timeout(0.05)

    def driver():
        nonlocal capped
        capped = net.transfer((link,), _NEVER_FINISH, max_rate=2e6)
        for _ in range(6):
            net.transfer((link,), 1e7)
            yield env.timeout(0.11)
        # Only the capped flow remains; spare capacity is huge but the
        # ceiling must still bind.
        yield env.timeout(1.0)
        flow = next(iter(net._flows))
        assert flow.rate == pytest.approx(2e6)
        flow.event.succeed()
        net._flows.clear()
        link._flows.clear()

    env.process(driver())
    env.process(sampler())
    env.run()
    assert observed, "sampler never saw the capped flow"
    assert max(observed) <= 2e6 * (1 + 1e-9)
