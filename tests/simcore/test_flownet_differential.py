"""Differential tests for the struct-of-arrays flow-network kernel.

The SoA kernel in :mod:`repro.simcore.flownet` claims *bit identity*
with the retired object-graph kernel (kept verbatim as
``flownet_legacy.LegacyFlowNetwork`` behind ``REPRO_FLOWNET=legacy``).
These tests pin that claim three independent ways:

* randomized topologies — steady-state rates and churn completion
  times must match the legacy kernel exactly (``==``, not approx) and
  an independent brute-force water-filler approximately;
* the scalar and vectorized code paths inside the SoA kernel must
  agree bit-for-bit (thresholds pinned low to force the vector paths
  on small populations);
* the 20 golden end-to-end scenarios must produce identical telemetry
  hash-chains under both kernels, and serial vs parallel sweeps must
  agree under the new kernel.

Satellite invariants for the projected-completion heap ride along: a
flow completed in a same-timestamp batch can never fire a wake (its
position is -1, so its heap entries are discarded on pop), and
surviving projections that lag ``now`` by float drift are clamped to
a strictly positive delay.
"""

import random

import pytest

from repro.experiments import ExperimentConfig, run_sweep
from repro.simcore import Environment, FlowNetwork, Link
from tests.simcore.test_flownet_invariants import reference_fill
from tests.test_observability_invariance import (
    SCENARIOS,
    _config,
    _hash_chain,
    small_workflow,
)

#: Huge payload so no flow finishes while steady-state rates are read.
_NEVER_FINISH = 1e18


@pytest.fixture
def legacy_kernel(monkeypatch):
    """Route FlowNetwork construction to the legacy object-graph kernel."""
    monkeypatch.setenv("REPRO_FLOWNET", "legacy")


@pytest.fixture
def forced_vector(monkeypatch):
    """Pin the SoA thresholds so even tiny populations take the
    vectorized sync/fill paths."""
    monkeypatch.setattr(FlowNetwork, "VEC_FILL_MIN", 1)
    monkeypatch.setattr(FlowNetwork, "VEC_SCAN_MIN", 1)


def _random_specs(rng):
    """Uneven capacities, shared-link components, capped flows."""
    n_links = rng.randint(2, 9)
    caps = [rng.choice([1e6, 3.7e6, 2.5e7, 1e8, rng.uniform(1e5, 1e9)])
            for _ in range(n_links)]
    specs = []
    for _ in range(rng.randint(2, 24)):
        k = rng.randint(1, min(3, n_links))
        path = tuple(sorted(rng.sample(range(n_links), k)))
        cap = rng.choice([None, None, None, 2e5, 1.5e6,
                          rng.uniform(1e4, 1e8)])
        specs.append((path, cap))
    return caps, specs


def _steady_rates(caps, specs):
    """Rates after all flows joined, in arrival order, plus the net."""
    env = Environment()
    net = FlowNetwork(env)
    links = [Link(f"l{i}", c) for i, c in enumerate(caps)]
    for path, cap in specs:
        net.transfer([links[i] for i in path], _NEVER_FINISH, max_rate=cap)
    return [flow.rate for flow in net._flows]


@pytest.mark.parametrize("trial", range(15))
def test_steady_rates_bit_identical_across_kernels(trial, monkeypatch):
    """SoA scalar == SoA vector == legacy, and all ≈ brute force."""
    rng = random.Random(52000 + trial)
    caps, specs = _random_specs(rng)

    scalar = _steady_rates(caps, specs)

    monkeypatch.setattr(FlowNetwork, "VEC_FILL_MIN", 1)
    monkeypatch.setattr(FlowNetwork, "VEC_SCAN_MIN", 1)
    vector = _steady_rates(caps, specs)
    monkeypatch.undo()

    monkeypatch.setenv("REPRO_FLOWNET", "legacy")
    legacy = _steady_rates(caps, specs)

    assert scalar == vector
    assert scalar == legacy

    links = [Link(f"l{i}", c) for i, c in enumerate(caps)]
    ref_specs = [([links[i] for i in path], cap) for path, cap in specs]
    want = reference_fill(ref_specs)
    for got, expected in zip(scalar, want):
        assert got == pytest.approx(expected, rel=1e-6, abs=1e-3)


def _churn_script(rng):
    """A reproducible arrival script with the nasty cases mixed in:
    zero-byte transfers, sub-epsilon payloads, shared-link components,
    synchronized same-timestamp waves."""
    caps, _ = _random_specs(rng)
    script = []
    for _ in range(rng.randint(10, 30)):
        k = rng.randint(1, min(3, len(caps)))
        path = tuple(sorted(rng.sample(range(len(caps)), k)))
        nbytes = rng.choice([
            0.0, 1e-12, rng.uniform(1e5, 5e7), rng.uniform(1e5, 5e7),
            rng.uniform(1e3, 1e5), rng.uniform(1e7, 2e8),
        ])
        cap = rng.choice([None, None, 2e5, rng.uniform(1e4, 1e7)])
        # delay 0.0 builds same-timestamp waves (the batched-cascade path).
        delay = rng.choice([0.0, 0.0, rng.uniform(0.01, 2.0)])
        script.append((path, nbytes, cap, delay))
    return caps, script


def _run_churn(caps, script):
    """Completion log [(flow index, finish time)] in event order."""
    env = Environment()
    net = FlowNetwork(env)
    links = [Link(f"l{i}", c) for i, c in enumerate(caps)]
    log = []

    def driver():
        pending = []
        for idx, (path, nbytes, cap, delay) in enumerate(script):
            done = net.transfer([links[i] for i in path], nbytes,
                                max_rate=cap)
            done.callbacks.append(
                lambda _ev, idx=idx: log.append((idx, env.now)))
            pending.append(done)
            if delay:
                yield env.timeout(delay)
        yield env.all_of(pending)

    env.process(driver())
    env.run()
    return log, net.total_bytes_moved, net.total_flows


@pytest.mark.parametrize("trial", range(10))
def test_churn_completions_bit_identical_across_kernels(trial, monkeypatch):
    """Completion order, completion times, and byte totals all match
    exactly under churn — including zero-byte and sub-epsilon payloads
    arriving inside same-timestamp waves."""
    caps, script = _churn_script(random.Random(61000 + trial))

    scalar = _run_churn(caps, script)

    monkeypatch.setattr(FlowNetwork, "VEC_FILL_MIN", 1)
    monkeypatch.setattr(FlowNetwork, "VEC_SCAN_MIN", 1)
    vector = _run_churn(caps, script)
    monkeypatch.undo()

    monkeypatch.setenv("REPRO_FLOWNET", "legacy")
    legacy = _run_churn(caps, script)

    assert scalar == vector
    assert scalar == legacy


@pytest.mark.parametrize("mode", ["exact", "projected"])
def test_completion_modes_agree_under_batching(mode, monkeypatch):
    """Both completion schedulers survive the same churn script with
    identical results under forced-vector batching."""
    caps, script = _churn_script(random.Random(77))

    def run(completion_mode):
        env = Environment()
        net = FlowNetwork(env, completion_mode=completion_mode)
        links = [Link(f"l{i}", c) for i, c in enumerate(caps)]
        log = []

        def driver():
            pending = []
            for idx, (path, nbytes, cap, delay) in enumerate(script):
                done = net.transfer([links[i] for i in path], nbytes,
                                    max_rate=cap)
                done.callbacks.append(
                    lambda _ev, idx=idx: log.append((idx, env.now)))
                pending.append(done)
                if delay:
                    yield env.timeout(delay)
            yield env.all_of(pending)

        env.process(driver())
        env.run()
        return log

    monkeypatch.setattr(FlowNetwork, "VEC_FILL_MIN", 1)
    monkeypatch.setattr(FlowNetwork, "VEC_SCAN_MIN", 1)
    got = run(mode)
    finished = {idx for idx, _t in got}
    assert finished == set(range(len(script)))
    # Completion *times* agree across modes (order may differ only
    # within a timestamp for the projected heap; it does not here).
    assert sorted(got) == sorted(run("exact" if mode == "projected"
                                     else "projected"))


def test_zero_byte_transfer_is_immediate_in_both_kernels(monkeypatch):
    """A zero-byte transfer succeeds synchronously, counts in
    ``total_flows``, and moves no bytes — same contract both kernels."""
    for legacy in (False, True):
        if legacy:
            monkeypatch.setenv("REPRO_FLOWNET", "legacy")
        env = Environment()
        net = FlowNetwork(env)
        link = Link("l", 10.0)
        done = net.transfer((link,), 0.0)
        assert done.triggered
        assert net.total_flows == 1
        assert net.total_bytes_moved == 0.0
        assert not net._flows
        assert not link._flows


# -- golden end-to-end scenarios ------------------------------------------


@pytest.mark.parametrize(
    "scenario", SCENARIOS,
    ids=["{}-{}-n{}-s{}".format(*s) for s in SCENARIOS])
def test_golden_scenarios_bit_identical_to_legacy(scenario, monkeypatch):
    """Telemetry hash-chain, makespan, and cost agree with the legacy
    kernel on every golden scenario."""
    app, storage, nodes, seed = scenario
    workflow = small_workflow(app)
    config = _config(app, storage, nodes, seed)

    (soa,) = run_sweep([config], workflow=workflow)
    monkeypatch.setenv("REPRO_FLOWNET", "legacy")
    (legacy,) = run_sweep([config], workflow=workflow)

    assert soa.run.makespan == legacy.run.makespan
    assert soa.cost.per_second_total == legacy.cost.per_second_total
    assert _hash_chain(soa) == _hash_chain(legacy)


def test_sweep_digest_serial_vs_parallel_under_soa_kernel():
    """The SoA kernel's results are independent of worker scheduling:
    the same sweep run serially and with two worker processes yields
    identical hash-chains cell for cell."""
    cells = [
        ("synthetic", "nfs", 2, 0),
        ("montage", "s3", 2, 0),
        ("synthetic", "pvfs", 4, 5),
        ("broadband", "nfs", 2, 23),
    ]
    configs = [_config(*cell) for cell in cells]
    serial = run_sweep(configs, workflow_factory=small_workflow)
    parallel = run_sweep(configs, workflow_factory=small_workflow, jobs=2)
    assert ([_hash_chain(r) for r in serial]
            == [_hash_chain(r) for r in parallel])


# -- projected-heap staleness invariants ----------------------------------


def test_projected_wake_never_targets_batch_completed_flow():
    """A same-timestamp batch that completes several flows leaves their
    heap entries stale (position -1); every wake actually scheduled must
    target a live, current-generation projection."""
    env = Environment()
    net = FlowNetwork(env, completion_mode="projected")
    link = Link("l", 100.0)

    orig = net._reschedule_projected
    guards = []

    def guarded():
        orig()
        if net._heap:
            _when, _seq, gen, flow = net._heap[0]
            pos = int(net._pos_of_id[flow.fid])
            assert pos >= 0, "wake scheduled from a completed flow"
            assert gen == int(net._f_gen[pos]), "wake from a stale rate"
            guards.append(flow)

    net._reschedule_projected = guarded

    # Five equal flows finish together in one batch at t=70 while two
    # stragglers (still holding valid projections) continue.
    batch = [net.transfer((link,), 1000.0) for _ in range(5)]
    stragglers = [net.transfer((link,), 5000.0) for _ in range(2)]
    env.run(env.all_of(batch))
    assert len(net._flows) == 2
    env.run(env.all_of(stragglers))
    assert not net._flows
    assert guards, "instrumented reschedule never ran"
    # Whatever the heap still holds is provably stale.
    for _when, _seq, _gen, flow in net._heap:
        assert int(net._pos_of_id[flow.fid]) < 0


def test_projected_drift_is_clamped_at_batch_boundary():
    """A surviving projection that lags ``now`` by float drift must be
    clamped to a strictly positive delay — the wake may never schedule
    at or before the current timestamp."""
    env = Environment()
    net = FlowNetwork(env, completion_mode="projected")
    link = Link("l", 10.0)
    net.transfer((link,), _NEVER_FINISH)
    env.run(until=100.0)

    flow = next(iter(net._flows))
    pos = int(net._pos_of_id[flow.fid])
    # Forge a projection an ulp in the past but otherwise valid.
    net._heap_seq += 1
    net._heap.insert(0, (env.now - 1e-12, net._heap_seq,
                         int(net._f_gen[pos]), flow))
    net._heap.sort()
    net._reschedule_projected()

    wake = net._wake_event
    entries = [when for when, _p, _s, ev in env._queue if ev is wake]
    assert entries, "reschedule did not arm a wake"
    assert entries[0] > env.now
    assert entries[0] == pytest.approx(env.now + 1e-9, abs=1e-12)
