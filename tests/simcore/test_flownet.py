"""Unit tests for the max-min fair flow network."""

import pytest

from repro.simcore import Environment, FlowNetwork, Link


def test_single_flow_single_link():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    done = []

    def proc(env):
        yield net.transfer([link], 1000.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(10.0)]


def test_two_flows_share_one_link():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    finish = []

    def proc(env):
        yield net.transfer([link], 1000.0)
        finish.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert finish == [pytest.approx(20.0), pytest.approx(20.0)]


def test_flows_on_disjoint_links_do_not_interact():
    env = Environment()
    net = FlowNetwork(env)
    l1, l2 = Link("a", 100.0), Link("b", 50.0)
    finish = {}

    def proc(env, link, tag):
        yield net.transfer([link], 1000.0)
        finish[tag] = env.now

    env.process(proc(env, l1, "fast"))
    env.process(proc(env, l2, "slow"))
    env.run()
    assert finish["fast"] == pytest.approx(10.0)
    assert finish["slow"] == pytest.approx(20.0)


def test_multi_link_flow_bottlenecked_by_slowest():
    env = Environment()
    net = FlowNetwork(env)
    fast, slow = Link("fast", 1000.0), Link("slow", 10.0)
    done = []

    def proc(env):
        yield net.transfer([fast, slow], 100.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(10.0)]


def test_max_min_fairness_redistributes_spare():
    """Two flows through a shared link; one also crosses a narrow private
    link.  The capped flow gets its narrow rate, the other takes the rest."""
    env = Environment()
    net = FlowNetwork(env)
    shared = Link("shared", 100.0)
    narrow = Link("narrow", 20.0)
    finish = {}

    def capped(env):
        yield net.transfer([shared, narrow], 200.0)
        finish["capped"] = env.now

    def free(env):
        yield net.transfer([shared], 800.0)
        finish["free"] = env.now

    env.process(capped(env))
    env.process(free(env))
    env.run()
    # capped flow: 20 B/s -> 10 s.  free flow: 80 B/s -> 800/80 = 10 s.
    assert finish["capped"] == pytest.approx(10.0)
    assert finish["free"] == pytest.approx(10.0)


def test_departure_triggers_reallocation():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    finish = {}

    def proc(env, tag, nbytes):
        yield net.transfer([link], nbytes)
        finish[tag] = env.now

    env.process(proc(env, "small", 500.0))
    env.process(proc(env, "big", 1500.0))
    env.run()
    # Shared at 50 each until small done at t=10 (500 B); big has 1000 B
    # left, now at 100 B/s -> finishes at t=20.
    assert finish["small"] == pytest.approx(10.0)
    assert finish["big"] == pytest.approx(20.0)


def test_per_flow_rate_cap():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 1000.0)
    done = []

    def proc(env):
        yield net.transfer([link], 100.0, max_rate=10.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(10.0)]


def test_rate_cap_spare_goes_to_other_flow():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    finish = {}

    def capped(env):
        yield net.transfer([link], 100.0, max_rate=10.0)
        finish["capped"] = env.now

    def free(env):
        yield net.transfer([link], 900.0)
        finish["free"] = env.now

    env.process(capped(env))
    env.process(free(env))
    env.run()
    assert finish["capped"] == pytest.approx(10.0)
    assert finish["free"] == pytest.approx(10.0)


def test_zero_bytes_completes_immediately():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    done = []

    def proc(env):
        yield net.transfer([link], 0.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_invalid_arguments_rejected():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    with pytest.raises(ValueError):
        net.transfer([link], -1.0)
    with pytest.raises(ValueError):
        net.transfer([link], 100.0, max_rate=0.0)
    with pytest.raises(ValueError):
        Link("bad", 0.0)
    with pytest.raises(ValueError):
        Link("bad", float("inf"))


def test_link_flow_counts():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)

    def proc(env):
        yield net.transfer([link], 1000.0)

    env.process(proc(env))
    env.process(proc(env))
    env.run(until=1.0)
    assert link.active_flows == 2
    assert net.active_flows == 2
    env.run()
    assert link.active_flows == 0
    assert net.total_bytes_moved == pytest.approx(2000.0)


def test_star_topology_many_clients_one_server():
    """N clients each with 100 B/s NIC pulling from a server NIC of
    100 B/s total: server is the bottleneck, each gets 100/N."""
    env = Environment()
    net = FlowNetwork(env)
    server_tx = Link("server-tx", 100.0)
    finish = []

    def client(env, i):
        nic = Link(f"client{i}-rx", 100.0)
        yield net.transfer([server_tx, nic], 100.0)
        finish.append(env.now)

    for i in range(4):
        env.process(client(env, i))
    env.run()
    # Each flow gets 25 B/s -> all finish at t=4*100/100 = 4... i.e. 100B/25 = 4s.
    assert finish == [pytest.approx(4.0)] * 4


def test_work_conservation_on_shared_link():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 10.0)
    last = []

    def proc(env, nbytes, delay):
        yield env.timeout(delay)
        yield net.transfer([link], nbytes)
        last.append(env.now)

    sizes = [100.0, 50.0, 25.0, 25.0]
    for s in sizes:
        env.process(proc(env, s, 0.0))
    env.run()
    # Link busy the whole time -> last completion = total bytes / capacity.
    assert max(last) == pytest.approx(sum(sizes) / 10.0)
