"""Unit tests for the DES engine: clock, run loop, processes."""

import pytest

from repro.simcore import (
    Environment,
    EventNotTriggered,
    Interrupt,
    SimulationDeadlock,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(5.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [5.0]


def test_timeout_value_passed_to_process():
    env = Environment()
    seen = []

    def proc(env):
        v = yield env.timeout(1.0, value="hello")
        seen.append(v)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return "result"

    p = env.process(proc(env))
    assert env.run(until=p) == "result"
    assert env.now == 3.0


def test_run_until_event_reraises_failure():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    p = env.process(proc(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=p)


def test_run_until_unreachable_event_deadlocks():
    env = Environment()
    ev = env.event()  # nobody will ever trigger this
    with pytest.raises(SimulationDeadlock):
        env.run(until=ev)


def test_step_on_empty_queue_deadlocks():
    env = Environment()
    with pytest.raises(SimulationDeadlock):
        env.step()


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3.0, "c"))
    env.process(proc(env, 1.0, "a"))
    env.process(proc(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abcd":
        env.process(proc(env, tag))
    env.run()
    assert order == list("abcd")


def test_nested_process_waits_for_child():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2.0)
        log.append(("child", env.now))
        return 99

    def parent(env):
        result = yield env.process(child(env))
        log.append(("parent", env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [("child", 2.0), ("parent", 2.0, 99)]


def test_process_value_readable_after_completion():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 7

    p = env.process(proc(env))
    with pytest.raises(EventNotTriggered):
        _ = p.value
    env.run()
    assert p.value == 7
    assert not p.is_alive


def test_process_exception_propagates_to_parent():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("child died")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["child died"]


def test_unhandled_process_failure_surfaces():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_interrupt_wakes_waiting_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(5.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(5.0, "wake up")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    p = env.process(proc(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_yield_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42  # not an Event

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_manual_event_trigger():
    env = Environment()
    ev = env.event()
    seen = []

    def waiter(env, ev):
        v = yield ev
        seen.append((env.now, v))

    def trigger(env, ev):
        yield env.timeout(4.0)
        ev.succeed("go")

    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert seen == [(4.0, "go")]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    # The timeout's trigger is queued at t=7 (timeouts self-queue).
    assert env.peek() == 7.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        results = yield env.all_of([t1, t2])
        times.append(env.now)
        assert set(results.values()) == {"a", "b"}

    env.process(proc(env))
    env.run()
    assert times == [5.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        results = yield env.any_of([t1, t2])
        times.append(env.now)
        assert "fast" in results.values()

    env.process(proc(env))
    env.run()
    assert times == [1.0]


def test_and_or_operators():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(1.0) & env.timeout(2.0)
        log.append(env.now)
        yield env.timeout(1.0) | env.timeout(10.0)
        log.append(env.now)

    env.process(proc(env))
    env.run(until=20)
    assert log == [2.0, 3.0]


def test_empty_all_of_fires_immediately():
    env = Environment()
    log = []

    def proc(env):
        yield env.all_of([])
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0]


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.any_of([])


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    from repro.simcore import EventAlreadyTriggered
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)


def test_many_processes_complete():
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(float(i % 17) + 0.1)
        done.append(i)

    for i in range(500):
        env.process(proc(env, i))
    env.run()
    assert sorted(done) == list(range(500))
