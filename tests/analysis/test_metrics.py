"""Tests for run analytics."""

import pytest

from repro.analysis import (
    critical_path_seconds,
    makespan_lower_bound,
    parallel_efficiency,
    phase_timeline,
    speedup_curve,
    stragglers,
    utilization,
)
from repro.apps import build_synthetic
from repro.experiments import ExperimentConfig, run_experiment
from repro.workflow import Task, Workflow
from repro.workflow.executor import JobRecord


def rec(start, end, cpu=None, io=0.0, submit=None, task="t"):
    r = JobRecord(task_id=task, transformation="x", node="n0",
                  submit_time=submit if submit is not None else start)
    r.start_time, r.end_time = start, end
    r.cpu_seconds = cpu if cpu is not None else (end - start)
    r.read_seconds = io
    return r


def chain_wf():
    wf = Workflow("chain")
    wf.add_file("f0", 1.0, is_input=True)
    wf.add_file("f1", 1.0)
    wf.add_file("f2", 1.0)
    wf.add_task(Task("a", "x", 10.0, inputs=["f0"], outputs=["f1"]))
    wf.add_task(Task("b", "x", 20.0, inputs=["f1"], outputs=["f2"]))
    # A parallel side task.
    wf.add_file("g", 1.0)
    wf.add_task(Task("c", "x", 5.0, inputs=["f0"], outputs=["g"]))
    return wf


def test_critical_path():
    wf = chain_wf()
    assert critical_path_seconds(wf) == 30.0
    assert critical_path_seconds(wf, {"a": 1.0, "b": 1.0, "c": 50.0}) == 50.0


def test_makespan_lower_bound():
    wf = chain_wf()
    # total work 35 over 100 slots -> critical path dominates.
    assert makespan_lower_bound(wf, 100) == 30.0
    # 1 slot -> total work dominates.
    assert makespan_lower_bound(wf, 1) == 35.0


def test_speedup_and_efficiency():
    m = {1: 100.0, 2: 50.0, 4: 40.0}
    s = speedup_curve(m)
    assert s == {1: 1.0, 2: 2.0, 4: 2.5}
    e = parallel_efficiency(m)
    assert e[2] == pytest.approx(1.0)
    assert e[4] == pytest.approx(0.625)
    assert speedup_curve({}) == {}


def test_utilization_from_real_run():
    r = run_experiment(ExperimentConfig("synthetic", "local", 1),
                       workflow=build_synthetic(24, width=8, seed=0))
    u = utilization(r.run)
    assert u.total_slots == 8
    assert 0 < u.busy_fraction <= 1.0
    assert u.cpu_fraction + u.io_fraction <= u.busy_fraction + 1e-9
    assert u.mean_queue_delay >= 0
    assert u.p95_queue_delay >= u.mean_queue_delay * 0.5


def test_phase_timeline_counts_overlaps():
    records = [rec(0, 100), rec(50, 150), rec(200, 210)]
    tl = phase_timeline(records, bucket_seconds=100.0)
    assert tl[0] == (0.0, 2)     # both long tasks overlap bucket 0
    assert tl[1][1] == 1         # only the second in [100, 200)
    assert tl[2][1] == 1         # the short one in [200, 300)
    assert phase_timeline([]) == []


def test_stragglers():
    records = [rec(0, float(i), task=f"t{i}") for i in range(10)]
    tail = stragglers(records, k=3)
    assert [r.task_id for r in tail] == ["t7", "t8", "t9"]
