"""Scaled-down end-to-end shape tests.

The full paper matrix runs in ``benchmarks/``; these integration tests
exercise the same pipeline on reduced workloads so the unit-test suite
stays fast while still asserting the qualitative physics:

* the S3 client cache exploits file reuse;
* GlusterFS NUFA keeps writes local, distribute spreads them;
* the NFS server saturates as clients multiply;
* the memory gate limits Broadband-style concurrency;
* costs follow the billing rules.
"""

import pytest

from repro.apps import build_broadband, build_epigenome, build_montage
from repro.experiments import ExperimentConfig, run_experiment

GB = 1e9


@pytest.fixture(scope="module")
def montage_small():
    return lambda: build_montage(degrees=2.0)


@pytest.fixture(scope="module")
def broadband_small():
    return lambda: build_broadband(n_sources=2, n_sites=4)


@pytest.fixture(scope="module")
def epigenome_small():
    return lambda: build_epigenome(chunks_per_lane=[5, 5, 5])


def run(app, storage, nodes, wf_factory, **kw):
    return run_experiment(
        ExperimentConfig(app, storage, nodes, **kw),
        workflow=wf_factory())


def test_montage_gluster_beats_s3_and_pvfs(montage_small):
    gfs = run("montage", "glusterfs-nufa", 4, montage_small)
    s3 = run("montage", "s3", 4, montage_small)
    pvfs = run("montage", "pvfs", 4, montage_small)
    assert gfs.makespan < s3.makespan
    assert gfs.makespan < pvfs.makespan


def test_montage_gluster_scales(montage_small):
    at2 = run("montage", "glusterfs-nufa", 2, montage_small)
    at8 = run("montage", "glusterfs-nufa", 8, montage_small)
    assert at8.makespan < at2.makespan


def test_epigenome_storage_insensitive(epigenome_small):
    makespans = [
        run("epigenome", st, 4, epigenome_small).makespan
        for st in ("s3", "nfs", "glusterfs-nufa", "pvfs")
    ]
    assert max(makespans) < 1.5 * min(makespans)


def test_epigenome_scales_with_cores():
    # A larger instance than the shared fixture so the per-chain
    # critical path (~500 s) does not dominate the 4-node makespan.
    factory = lambda: build_epigenome(chunks_per_lane=[12, 12, 12])  # noqa: E731
    at1 = run("epigenome", "nfs", 1, factory)
    at4 = run("epigenome", "nfs", 4, factory)
    assert at4.makespan < 0.55 * at1.makespan


def test_broadband_s3_cache_serves_reuse():
    # Full-size Broadband (runs in ~1 s of wall time): the shared
    # velocity model is read 144 times but fetched at most once per
    # node, so cache hits dwarf the GETs for the reused inputs.
    r = run_experiment(ExperimentConfig("broadband", "s3", 4))
    stats = r.run.storage_stats
    assert stats.cache_hits > 1000
    # The 1.1 GB velocity model: <= 4 fetches (one per node) despite
    # 144 reads.
    velocity_reads = 3 * 48
    assert stats.cache_hits > velocity_reads  # reuse clearly captured
    # Every byte that hit the cache avoided the wire.
    assert stats.remote_reads + stats.cache_hits == stats.reads


def test_broadband_nufa_beats_distribute():
    # Full-size Broadband: at the 2x4 toy scale the two layouts are
    # within noise of each other; the paper's effect needs the real
    # chain population.
    nufa = run_experiment(
        ExperimentConfig("broadband", "glusterfs-nufa", 4))
    dist = run_experiment(
        ExperimentConfig("broadband", "glusterfs-distribute", 4))
    assert nufa.run.storage_stats.remote_writes == 0
    assert dist.run.storage_stats.remote_writes > 0
    assert nufa.makespan <= dist.makespan


def test_nfs_saturates_with_clients(broadband_small):
    """Per-core efficiency collapses as clients multiply on one server."""
    at2 = run("broadband", "nfs", 2, broadband_small)
    at8 = run("broadband", "nfs", 8, broadband_small)
    speedup = at2.makespan / at8.makespan
    assert speedup < 2.0  # nowhere near the 4x core increase


def test_memory_gate_limits_broadband(broadband_small):
    """Broadband cannot use all 8 slots: heavy tasks are memory-gated,
    so doubling nodes helps it more than its slot count suggests."""
    r = run("broadband", "glusterfs-nufa", 2, broadband_small)
    # With 16 slots but ~4.x effective per node, the run must take
    # longer than a slot-limited bound would allow.
    wf = broadband_small()
    slot_bound = wf.total_cpu_seconds() / 16
    assert r.makespan > 1.3 * slot_bound


def test_per_second_cost_tracks_makespan(epigenome_small):
    fast = run("epigenome", "glusterfs-nufa", 8, epigenome_small)
    slow = run("epigenome", "glusterfs-nufa", 2, epigenome_small)
    # Same hourly rate per node: 8 nodes x shorter vs 2 x longer.
    assert fast.cost.per_second_total == pytest.approx(
        8 * 0.68 * fast.makespan / 3600, rel=0.01)
    assert slow.cost.per_second_total == pytest.approx(
        2 * 0.68 * slow.makespan / 3600, rel=0.01)


def test_adding_nodes_rarely_reduces_cost(epigenome_small):
    """Paper §VI: cost only decreases with added nodes when speedup is
    superlinear — which it is not."""
    costs = {}
    for n in (2, 4, 8):
        r = run("epigenome", "glusterfs-nufa", n, epigenome_small)
        costs[n] = r.cost.per_second_total
    assert costs[4] >= costs[2] * 0.98
    assert costs[8] >= costs[4] * 0.98


def test_locality_scheduler_no_worse_on_s3():
    # Full-size Broadband: the toy instance has too little reuse for
    # the matchmaking preference to show above noise.
    fifo = run_experiment(
        ExperimentConfig("broadband", "s3", 4, scheduler="fifo"))
    aware = run_experiment(
        ExperimentConfig("broadband", "s3", 4, scheduler="locality"))
    assert aware.run.storage_stats.cache_hits > \
        fifo.run.storage_stats.cache_hits
    assert aware.run.storage_stats.get_requests < \
        fifo.run.storage_stats.get_requests
    assert aware.makespan <= fifo.makespan * 1.05


def test_write_once_invariant_holds_across_systems(montage_small):
    """No run may ever violate the namespace lifecycle (would raise)."""
    for st in ("s3", "nfs", "glusterfs-distribute", "pvfs"):
        result = run("montage", st, 2, montage_small)
        assert result.run.n_jobs == montage_small().n_tasks
