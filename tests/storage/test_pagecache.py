"""Unit tests for the client page-cache model."""


from repro.cloud import GB, MB, ClusterNetwork, VMInstance, get_instance_type
from repro.simcore import Environment
from repro.storage.pagecache import MIN_CACHE_BYTES, NodePageCache


def make_node(env=None):
    env = env or Environment()
    net = ClusterNetwork(env)
    return env, VMInstance(env, get_instance_type("c1.xlarge"), net)


def test_lookup_miss_then_hit():
    env, node = make_node()
    pc = NodePageCache(node)
    assert not pc.lookup("f")
    pc.insert("f", 10 * MB)
    assert pc.lookup("f")
    assert pc.hits == 1 and pc.misses == 1


def test_capacity_tracks_free_memory():
    env, node = make_node()
    pc = NodePageCache(node)
    free_cap = pc.capacity()
    assert free_cap > 2 * GB  # 7 GB node, mostly free

    def claim(env):
        yield node.memory.get(6.5 * GB)

    env.process(claim(env))
    env.run()
    assert pc.capacity() < free_cap / 5  # pressure shrank the cache


def test_memory_pressure_evicts_on_lookup():
    env, node = make_node()
    pc = NodePageCache(node)
    pc.insert("big", 1.5 * GB)
    assert pc.lookup("big")

    def claim(env):
        yield node.memory.get(6.5 * GB)

    env.process(claim(env))
    env.run()
    # Capacity collapsed to the floor; the big file must be evicted.
    assert not pc.lookup("big")
    assert pc.cached_bytes == 0


def test_file_larger_than_capacity_never_cached():
    env, node = make_node()

    def claim(env):
        yield node.memory.get(6.8 * GB)

    env.process(claim(env))
    env.run()
    pc = NodePageCache(node)
    pc.insert("huge", 1 * GB)  # capacity is now ~MIN_CACHE_BYTES
    assert not pc.lookup("huge")


def test_min_cache_floor_keeps_small_files():
    """Even under full memory pressure, small hot files (Epigenome's
    reference index) stay cached."""
    env, node = make_node()

    def claim(env):
        yield node.memory.get(6.9 * GB)

    env.process(claim(env))
    env.run()
    pc = NodePageCache(node)
    assert pc.capacity() == MIN_CACHE_BYTES
    pc.insert("ref", 15 * MB)
    assert pc.lookup("ref")


def test_lru_eviction_order():
    env, node = make_node()
    pc = NodePageCache(node)
    cap = pc.capacity()
    size = cap / 3
    pc.insert("a", size)
    pc.insert("b", size)
    pc.lookup("a")          # refresh a
    pc.insert("c", size)
    pc.insert("d", size)    # evicts LRU = b
    assert pc.lookup("a")
    assert not pc.lookup("b")


def test_invalidate():
    env, node = make_node()
    pc = NodePageCache(node)
    pc.insert("f", MB)
    pc.invalidate("f")
    assert not pc.lookup("f")
    pc.invalidate("ghost")  # no-op


def test_duplicate_insert_no_double_count():
    env, node = make_node()
    pc = NodePageCache(node)
    pc.insert("f", 10 * MB)
    pc.insert("f", 10 * MB)
    assert pc.cached_bytes == 10 * MB
