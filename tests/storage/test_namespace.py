"""Unit + property tests for the write-once namespace."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import FileMetadata, FileState, Namespace, WriteOnceViolation


def test_declare_and_lookup():
    ns = Namespace()
    meta = ns.declare(FileMetadata("a.dat", 100.0))
    assert ns.lookup("a.dat") is meta
    assert "a.dat" in ns
    assert len(ns) == 1
    assert ns.state("a.dat") is FileState.PENDING


def test_prestaged_is_available():
    ns = Namespace()
    ns.declare(FileMetadata("in.dat", 50.0), available=True)
    assert ns.state("in.dat") is FileState.AVAILABLE


def test_redeclare_identical_is_noop():
    ns = Namespace()
    ns.declare(FileMetadata("a", 1.0))
    ns.declare(FileMetadata("a", 1.0))
    assert len(ns) == 1


def test_redeclare_conflicting_rejected():
    ns = Namespace()
    ns.declare(FileMetadata("a", 1.0))
    with pytest.raises(WriteOnceViolation):
        ns.declare(FileMetadata("a", 2.0))


def test_redeclare_available_upgrades():
    ns = Namespace()
    ns.declare(FileMetadata("a", 1.0))
    ns.declare(FileMetadata("a", 1.0), available=True)
    assert ns.state("a") is FileState.AVAILABLE


def test_write_lifecycle():
    ns = Namespace()
    ns.declare(FileMetadata("out", 10.0))
    ns.begin_write("out")
    assert ns.state("out") is FileState.WRITING
    ns.end_write("out")
    assert ns.state("out") is FileState.AVAILABLE


def test_double_write_rejected():
    ns = Namespace()
    ns.declare(FileMetadata("out", 10.0))
    ns.begin_write("out")
    ns.end_write("out")
    with pytest.raises(WriteOnceViolation):
        ns.begin_write("out")


def test_concurrent_write_rejected():
    ns = Namespace()
    ns.declare(FileMetadata("out", 10.0))
    ns.begin_write("out")
    with pytest.raises(WriteOnceViolation):
        ns.begin_write("out")


def test_read_before_available_rejected():
    ns = Namespace()
    ns.declare(FileMetadata("f", 10.0))
    with pytest.raises(WriteOnceViolation):
        ns.begin_read("f")
    ns.begin_write("f")
    with pytest.raises(WriteOnceViolation):
        ns.begin_read("f")


def test_concurrent_reads_allowed():
    ns = Namespace()
    ns.declare(FileMetadata("f", 10.0), available=True)
    ns.begin_read("f")
    ns.begin_read("f")
    ns.end_read("f")
    ns.end_read("f")


def test_unbalanced_end_read_rejected():
    ns = Namespace()
    ns.declare(FileMetadata("f", 10.0), available=True)
    with pytest.raises(WriteOnceViolation):
        ns.end_read("f")


def test_end_write_without_begin_rejected():
    ns = Namespace()
    ns.declare(FileMetadata("f", 10.0))
    with pytest.raises(WriteOnceViolation):
        ns.end_write("f")


def test_undeclared_file_keyerror():
    ns = Namespace()
    with pytest.raises(KeyError):
        ns.begin_write("nope")
    with pytest.raises(KeyError):
        ns.begin_read("nope")
    with pytest.raises(KeyError):
        ns.lookup("nope")


def test_metadata_validation():
    with pytest.raises(ValueError):
        FileMetadata("", 1.0)
    with pytest.raises(ValueError):
        FileMetadata("x", -1.0)


def test_total_bytes_by_state():
    ns = Namespace()
    ns.declare(FileMetadata("in", 100.0), available=True)
    ns.declare(FileMetadata("out", 50.0))
    assert ns.total_bytes() == 150.0
    assert ns.total_bytes(FileState.AVAILABLE) == 100.0
    assert ns.total_bytes(FileState.PENDING) == 50.0


# ------------------------------------------------------------- property

@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["w", "r"]), st.integers(0, 9)),
    max_size=60,
))
def test_property_write_once_always_enforced(ops):
    """Random interleavings of write/read attempts on 10 files: a file
    accepts exactly one write, never while read, and reads succeed only
    when available — regardless of order."""
    ns = Namespace()
    for i in range(10):
        ns.declare(FileMetadata(f"f{i}", 1.0))
    written = set()
    for op, i in ops:
        name = f"f{i}"
        if op == "w":
            if name in written:
                with pytest.raises(WriteOnceViolation):
                    ns.begin_write(name)
            else:
                ns.begin_write(name)
                ns.end_write(name)
                written.add(name)
        else:
            if name in written:
                ns.begin_read(name)
                ns.end_read(name)
            else:
                with pytest.raises(WriteOnceViolation):
                    ns.begin_read(name)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e9,
                          allow_nan=False), max_size=30))
def test_property_total_bytes_is_sum(sizes):
    ns = Namespace()
    for i, s in enumerate(sizes):
        ns.declare(FileMetadata(f"f{i}", s), available=True)
    assert ns.total_bytes() == pytest.approx(sum(sizes))
