"""Shared fixtures for storage-system tests."""

import pytest

from repro.cloud import EC2Cloud
from repro.simcore import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cloud(env):
    return EC2Cloud(env, seed=0)


@pytest.fixture
def workers4(cloud):
    return cloud.launch_many("c1.xlarge", 4)


@pytest.fixture
def worker1(cloud):
    return cloud.launch_many("c1.xlarge", 1)


def run(env, gen):
    """Drive a generator to completion; return elapsed sim time."""
    t0 = env.now
    env.run(until=env.process(gen))
    return env.now - t0
