"""Behavioural tests for each storage-system model."""

import pytest

from repro.cloud import MB
from repro.simcore import Environment
from repro.storage import (
    FileMetadata,
    GlusterFSStorage,
    LocalDiskStorage,
    NFSStorage,
    PVFSStorage,
    S3Storage,
    STORAGE_NAMES,
    XtreemFSStorage,
    make_storage,
)

from .conftest import run


# ----------------------------------------------------------------- local

def test_local_read_write_use_node_disk(env, worker1):
    fs = LocalDiskStorage(env)
    fs.deploy(worker1)
    node = worker1[0]
    meta = FileMetadata("f", 80 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(node, meta)   # 80 MB at 80 MB/s first-write
        yield from fs.read(node, meta)    # just written: page-cache hit
        fs.page_cache_of(node).invalidate(meta.name)
        yield from fs.read(node, meta)    # cold: 80 MB at ~310 MB/s

    elapsed = run(env, proc())
    assert elapsed == pytest.approx(1.0 + 80 / 310.2, rel=0.02)
    assert node.disk.writes == 1 and node.disk.reads == 1
    assert fs.stats.cache_hits == 1


def test_local_rejects_multiple_nodes(env, workers4):
    fs = LocalDiskStorage(env)
    with pytest.raises(ValueError, match="<= 1 nodes"):
        fs.deploy(workers4)


def test_use_before_deploy_rejected(env, worker1):
    fs = LocalDiskStorage(env)
    meta = FileMetadata("f", MB)
    with pytest.raises(RuntimeError, match="before deploy"):
        fs.stage_input(meta)


# ------------------------------------------------------------------- nfs

def _nfs(env, cloud, n_workers):
    workers = cloud.launch_many("c1.xlarge", n_workers)
    server = cloud.launch("m1.xlarge", name="nfs-server")
    fs = NFSStorage(env, server)
    fs.deploy(workers)
    return fs, workers, server


def test_nfs_write_lands_in_server_cache(env, cloud):
    fs, workers, server = _nfs(env, cloud, 1)
    meta = FileMetadata("f", 100 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers[0], meta)

    elapsed = run(env, proc())
    # Async write: completes at ~wire speed (125 MB/s), well before the
    # server disk could absorb it at first-write speed.
    assert elapsed == pytest.approx(100 / 125, rel=0.05)
    assert fs.cached_bytes == 100 * MB
    env.run()  # drain background flush
    assert fs.flushes_completed == 1
    assert server.disk.bytes_written == 100 * MB


def test_nfs_cached_read_skips_server_disk(env, cloud):
    fs, workers, server = _nfs(env, cloud, 1)
    meta = FileMetadata("f", 50 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers[0], meta)
        reads_before = server.disk.reads
        yield from fs.read(workers[0], meta)
        return server.disk.reads - reads_before

    disk_reads = env.run(until=env.process(proc()))
    assert disk_reads == 0
    assert fs.stats.cache_hits == 1


def test_nfs_cold_read_hits_server_disk(env, cloud):
    fs, workers, server = _nfs(env, cloud, 1)
    meta = FileMetadata("in", 50 * MB)
    fs.stage_input(meta)

    def proc():
        yield from fs.read(workers[0], meta)

    run(env, proc())
    assert server.disk.reads == 1
    assert fs.stats.cache_misses == 1


def test_nfs_server_nic_is_contended(env, cloud):
    """Reads from many clients share the server NIC: 4 clients pulling
    cached files take ~4x longer than one."""
    fs, workers, server = _nfs(env, cloud, 4)
    metas = [FileMetadata(f"f{i}", 125 * MB) for i in range(4)]
    for m in metas:
        fs.declare_output(m)

    def write_all():
        for m in metas:
            yield from fs.write(workers[0], m)

    run(env, write_all())
    t0 = env.now
    finish = []

    def reader(w, m):
        yield from fs.read(w, m)
        finish.append(env.now - t0)

    # Readers that did NOT write the files (no client page cache).
    for w, m in zip(workers[1:], metas[:3]):
        env.process(reader(w, m))
    env.run()
    # 3 x 125 MB through one 125 MB/s server NIC: ~3 s, not ~1 s.
    assert all(t == pytest.approx(3.0, rel=0.1) for t in finish)


def test_nfs_dirty_throttling_blocks_writers(env, cloud):
    """Writers outrunning the server disk eventually stall on the
    dirty quota."""
    fs, workers, server = _nfs(env, cloud, 2)
    # Dirty quota: 80% * 16 GB * 40% = 5.12 GB.  Write 8 GB rapidly.
    metas = [FileMetadata(f"big{i}", 1000 * MB) for i in range(8)]
    for m in metas:
        fs.declare_output(m)

    def writer(w, batch):
        for m in batch:
            yield from fs.write(w, m)

    env.process(writer(workers[0], metas[:4]))
    env.process(writer(workers[1], metas[4:]))
    env.run()
    # All flushed in the end.
    assert fs.flushes_completed == 8
    assert server.disk.bytes_written == pytest.approx(8000 * MB)


# ---------------------------------------------------------------- gluster

def test_gluster_needs_two_nodes(env, worker1):
    fs = GlusterFSStorage(env, layout="nufa")
    with pytest.raises(ValueError, match=">= 2 nodes"):
        fs.deploy(worker1)


def test_gluster_bad_layout():
    env = Environment()
    with pytest.raises(ValueError, match="layout"):
        GlusterFSStorage(env, layout="stripe")


def test_gluster_nufa_writes_are_local(env, workers4):
    fs = GlusterFSStorage(env, layout="nufa")
    fs.deploy(workers4)
    meta = FileMetadata("out", 10 * MB)
    fs.declare_output(meta)
    writer = workers4[2]

    def proc():
        yield from fs.write(writer, meta)

    run(env, proc())
    assert fs.owner_of("out") is writer
    assert fs.stats.remote_writes == 0
    assert writer.disk.writes == 1


def test_gluster_distribute_places_by_hash(env, workers4):
    fs = GlusterFSStorage(env, layout="distribute")
    fs.deploy(workers4)
    metas = [FileMetadata(f"f{i}", MB) for i in range(64)]
    for m in metas:
        fs.declare_output(m)

    def proc():
        for m in metas:
            yield from fs.write(workers4[0], m)

    run(env, proc())
    owners = {fs.owner_of(m.name).name for m in metas}
    # Hashing should spread 64 files over all 4 nodes.
    assert len(owners) == 4
    # ~3/4 of writes should have been remote.
    assert 32 <= fs.stats.remote_writes <= 60


def test_gluster_remote_read_crosses_network(env, workers4):
    fs = GlusterFSStorage(env, layout="nufa")
    fs.deploy(workers4)
    meta = FileMetadata("f", 50 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers4[0], meta)
        t0 = env.now
        yield from fs.read(workers4[1], meta)
        return env.now - t0

    elapsed = env.run(until=env.process(proc()))
    # Remote read at wire speed 125 MB/s (disk read at 310 overlaps).
    assert elapsed == pytest.approx(50 / 125, rel=0.05)
    assert fs.stats.remote_reads == 1


def test_gluster_local_read_uses_local_disk(env, workers4):
    fs = GlusterFSStorage(env, layout="nufa")
    fs.deploy(workers4)
    meta = FileMetadata("f", 31 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers4[0], meta)
        t_hit0 = env.now
        yield from fs.read(workers4[0], meta)   # page-cache hit
        hit_time = env.now - t_hit0
        fs.page_cache_of(workers4[0]).invalidate(meta.name)
        t0 = env.now
        yield from fs.read(workers4[0], meta)   # local disk read
        return hit_time, env.now - t0

    hit_time, elapsed = env.run(until=env.process(proc()))
    assert hit_time < 0.001
    assert elapsed == pytest.approx(31 / 310.2, rel=0.1)


def test_gluster_input_staging_round_robin(env, workers4):
    fs = GlusterFSStorage(env, layout="nufa")
    fs.deploy(workers4)
    for i in range(8):
        fs.stage_input(FileMetadata(f"in{i}", MB))
    owners = [fs.owner_of(f"in{i}").name for i in range(8)]
    assert owners == [w.name for w in workers4] * 2


# ------------------------------------------------------------------- pvfs

def test_pvfs_needs_two_nodes(env, worker1):
    fs = PVFSStorage(env)
    with pytest.raises(ValueError):
        fs.deploy(worker1)


def test_pvfs_create_cost_grows_with_nodes(env, cloud):
    workers2 = cloud.launch_many("c1.xlarge", 2, name_prefix="a")
    workers8 = cloud.launch_many("c1.xlarge", 8, name_prefix="b")
    fs2, fs8 = PVFSStorage(env), PVFSStorage(env)
    fs2.deploy(workers2)
    fs8.deploy(workers8)
    meta = FileMetadata("tiny", 1000.0)  # metadata-dominated
    fs2.declare_output(meta)
    fs8.declare_output(FileMetadata("tiny8", 1000.0))

    def t(fs, m, node):
        t0 = env.now
        yield from fs.write(node, m)
        return env.now - t0

    t2 = env.run(until=env.process(t(fs2, meta, workers2[0])))
    t8 = env.run(until=env.process(t(fs8, FileMetadata("tiny8", 1000.0), workers8[0])))
    assert t8 > t2  # per-server create cost


def test_pvfs_small_file_on_one_server(env, workers4):
    fs = PVFSStorage(env)
    fs.deploy(workers4)
    meta = FileMetadata("small", 1000.0)  # < 64 KB stripe
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers4[0], meta)

    run(env, proc())
    touched = [w for w in workers4 if w.disk.writes > 0]
    assert len(touched) == 1


def test_pvfs_large_file_striped_everywhere(env, workers4):
    fs = PVFSStorage(env)
    fs.deploy(workers4)
    meta = FileMetadata("big", 40 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers4[0], meta)

    run(env, proc())
    for w in workers4:
        assert w.disk.bytes_written == pytest.approx(10 * MB)


def test_pvfs_striped_read_parallel(env, workers4):
    fs = PVFSStorage(env)
    fs.deploy(workers4)
    meta = FileMetadata("big", 40 * MB)
    fs.stage_input(meta)

    def proc():
        t0 = env.now
        yield from fs.read(workers4[0], meta)
        return env.now - t0

    elapsed = env.run(until=env.process(proc()))
    # Stripes move in parallel, but the client protocol stream paces
    # the read at PER_STREAM_BW: 40 MB at 40 MB/s = 1 s.
    assert elapsed == pytest.approx(40 * MB / fs.PER_STREAM_BW, rel=0.05)


# --------------------------------------------------------------------- s3

def _s3(env, cloud, n):
    workers = cloud.launch_many("c1.xlarge", n)
    fs = S3Storage(env, cloud)
    fs.deploy(workers)
    return fs, workers


def test_s3_write_is_double_write(env, cloud):
    fs, workers = _s3(env, cloud, 1)
    node = workers[0]
    meta = FileMetadata("out", 10 * MB)
    meta2 = FileMetadata("out2", 10 * MB)
    fs.declare_output(meta)
    fs.declare_output(meta2)

    def proc():
        yield from fs.write(node, meta)
        # Under memory pressure, the PUT read-back hits the disk.
        fs.page_cache_of(node).invalidate(meta2.name)

    run(env, proc())
    assert node.disk.writes == 1          # program -> disk
    # Read-back served from the still-resident pages (write-back cache).
    assert node.disk.reads == 0
    assert fs.stats.put_requests == 1
    assert fs.in_bucket("out")

    def proc2():
        yield from fs.write(node, meta2)

    fs.page_cache_of(node).shrink()
    run(env, proc2())
    # Evict the pages, force a fresh read for a later consumer.
    fs.page_cache_of(node).invalidate(meta2.name)

    def proc3():
        yield from fs.read(node, meta2)

    run(env, proc3())
    assert node.disk.reads >= 1           # disk -> program after eviction


def test_s3_read_miss_then_hit(env, cloud):
    fs, workers = _s3(env, cloud, 1)
    node = workers[0]
    meta = FileMetadata("in", 10 * MB)
    fs.stage_input(meta)

    def proc():
        yield from fs.read(node, meta)   # miss: GET + disk landing write
        yield from fs.read(node, meta)   # hit: RAM-resident local copy
        fs.page_cache_of(node).invalidate(meta.name)
        yield from fs.read(node, meta)   # hit, pages evicted: disk read
        return None

    run(env, proc())
    assert fs.stats.get_requests == 1
    assert fs.stats.cache_hits == 2
    assert fs.stats.cache_misses == 1
    assert node.disk.writes == 1
    assert node.disk.reads == 1


def test_s3_cache_is_per_node(env, cloud):
    fs, workers = _s3(env, cloud, 2)
    meta = FileMetadata("in", 5 * MB)
    fs.stage_input(meta)

    def proc():
        yield from fs.read(workers[0], meta)
        yield from fs.read(workers[1], meta)

    run(env, proc())
    assert fs.stats.get_requests == 2  # one per node


def test_s3_concurrent_fetches_deduplicated(env, cloud):
    fs, workers = _s3(env, cloud, 1)
    node = workers[0]
    meta = FileMetadata("in", 20 * MB)
    fs.stage_input(meta)

    def reader():
        yield from fs.read(node, meta)

    env.process(reader())
    env.process(reader())
    env.run()
    assert fs.stats.get_requests == 1  # second reader joined the first


def test_s3_outputs_cached_for_reuse(env, cloud):
    fs, workers = _s3(env, cloud, 1)
    node = workers[0]
    meta = FileMetadata("out", 5 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(node, meta)
        yield from fs.read(node, meta)

    run(env, proc())
    assert fs.stats.get_requests == 0  # output reused from cache


def test_s3_missing_object_raises(env, cloud):
    fs, workers = _s3(env, cloud, 1)
    meta = FileMetadata("ghost", MB)

    def proc():
        yield from fs.read(workers[0], meta)

    with pytest.raises(FileNotFoundError):
        run(env, proc())


def test_s3_request_latency_dominates_small_files(env, cloud):
    fs, workers = _s3(env, cloud, 1)
    meta = FileMetadata("tiny", 1000.0)
    fs.stage_input(meta)

    def proc():
        t0 = env.now
        yield from fs.read(workers[0], meta)
        return env.now - t0

    elapsed = env.run(until=env.process(proc()))
    assert elapsed >= fs.GET_LATENCY


# --------------------------------------------------------------- xtreemfs

def test_xtreemfs_much_slower_per_file(env, cloud):
    workers = cloud.launch_many("c1.xlarge", 2)
    xfs = XtreemFSStorage(env, cloud)
    xfs.deploy(workers)
    gfs = GlusterFSStorage(env, layout="nufa")
    gfs.deploy(workers)
    meta_x = FileMetadata("fx", 5 * MB)
    meta_g = FileMetadata("fg", 5 * MB)
    xfs.declare_output(meta_x)
    gfs.declare_output(meta_g)

    def timed(fs, meta):
        t0 = env.now
        yield from fs.write(workers[0], meta)
        yield from fs.read(workers[1], meta)
        return env.now - t0

    tx = env.run(until=env.process(timed(xfs, meta_x)))
    tg = env.run(until=env.process(timed(gfs, meta_g)))
    assert tx > 2 * tg  # the paper's ">2x slower" observation


# ---------------------------------------------------------------- factory

def test_make_storage_all_names(env, cloud):
    server = cloud.launch("m1.xlarge")
    for name in STORAGE_NAMES:
        fs = make_storage(name, env, cloud=cloud if name in ("s3", "xtreemfs") else None,
                          nfs_server=server if name == "nfs" else None)
        assert fs.name == name
    # Only one s3/xtreemfs endpoint per network, so re-creating fails.
    with pytest.raises(ValueError):
        make_storage("s3", env)


def test_make_storage_unknown(env):
    with pytest.raises(ValueError, match="unknown storage system"):
        make_storage("afs", env)


def test_make_storage_missing_requirements(env):
    with pytest.raises(ValueError, match="requires"):
        make_storage("nfs", env)
