"""Detailed GlusterFS model tests: brick page caches, placement."""

import pytest

from repro.cloud import MB
from repro.simcore import Environment
from repro.storage import FileMetadata, GlusterFSStorage

from .conftest import run


def make(env, cloud, layout="nufa", n=4):
    workers = cloud.launch_many("c1.xlarge", n)
    fs = GlusterFSStorage(env, layout=layout)
    fs.deploy(workers)
    return fs, workers


def test_remote_read_served_from_owner_page_cache(env, cloud):
    """A file hot on its owner's brick costs only the wire."""
    fs, workers = make(env, cloud)
    meta = FileMetadata("f", 50 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers[0], meta)   # hot on worker-0
        reads_before = workers[0].disk.reads
        t0 = env.now
        yield from fs.read(workers[1], meta)
        return workers[0].disk.reads - reads_before, env.now - t0

    disk_reads, elapsed = env.run(until=env.process(proc()))
    assert disk_reads == 0                      # owner served from RAM
    assert elapsed == pytest.approx(50 / 125, rel=0.05)  # wire only


def test_remote_read_cold_hits_owner_disk(env, cloud):
    fs, workers = make(env, cloud)
    meta = FileMetadata("f", 50 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers[0], meta)
        fs.page_cache_of(workers[0]).invalidate(meta.name)
        reads_before = workers[0].disk.reads
        yield from fs.read(workers[1], meta)
        return workers[0].disk.reads - reads_before

    assert env.run(until=env.process(proc())) == 1


def test_distribute_remote_write_lands_in_owner_cache(env, cloud):
    fs, workers = make(env, cloud, layout="distribute")
    # Find a name whose hash owner differs from the writer.
    writer = workers[0]
    name = next(f"x{i}" for i in range(64)
                if fs._hash_owner(f"x{i}") is not writer)
    meta = FileMetadata(name, 10 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(writer, meta)

    run(env, proc())
    owner = fs.owner_of(name)
    assert owner is not writer
    assert fs.page_cache_of(owner).lookup(name)
    # The writer keeps its own written pages resident too.
    assert fs.page_cache_of(writer).lookup(name)


def test_nufa_distribute_placement_difference(env, cloud):
    """NUFA: all outputs of one node stay on it; distribute scatters."""
    env2, cloud2 = Environment(), None
    from repro.cloud import EC2Cloud as _EC2
    cloud2 = _EC2(env2)
    nufa, w_nufa = make(env, cloud, layout="nufa")
    dist, w_dist = make(env2, cloud2, layout="distribute")
    metas = [FileMetadata(f"f{i}", MB) for i in range(32)]
    for fs_, workers_, env_ in ((nufa, w_nufa, env), (dist, w_dist, env2)):
        for m in metas:
            fs_.declare_output(m)

        def write_all(fs__, node):
            for m in metas:
                yield from fs__.write(node, m)

        env_.run(until=env_.process(write_all(fs_, workers_[0])))
    assert {nufa.owner_of(m.name).name for m in metas} == {w_nufa[0].name}
    assert len({dist.owner_of(m.name).name for m in metas}) > 1


def test_stats_track_remote_fraction(env, cloud):
    fs, workers = make(env, cloud, layout="distribute")
    metas = [FileMetadata(f"g{i}", MB) for i in range(40)]
    for m in metas:
        fs.declare_output(m)

    def proc():
        for m in metas:
            yield from fs.write(workers[0], m)

    run(env, proc())
    # ~3/4 of hash placements are remote on 4 nodes.
    assert 0.5 <= fs.stats.remote_writes / fs.stats.writes <= 0.95
