"""Detailed NFS model tests: caches, throttling, server sizing."""

import pytest

from repro.cloud import GB, MB, EC2Cloud
from repro.simcore import Environment
from repro.storage import FileMetadata, NFSStorage

from .conftest import run


def make_nfs(env, cloud, n_workers=2, server_type="m1.xlarge"):
    workers = cloud.launch_many("c1.xlarge", n_workers)
    server = cloud.launch(server_type, name="nfs-server")
    fs = NFSStorage(env, server)
    fs.deploy(workers)
    return fs, workers, server


def test_cache_capacity_scales_with_server_memory(env, cloud):
    small, _, _ = make_nfs(env, cloud, server_type="m1.xlarge")
    assert small.cache_capacity == pytest.approx(16 * GB * 0.8)


def test_big_server_has_more_rpc_and_cache(env, cloud):
    env2 = Environment()
    cloud2 = EC2Cloud(env2)
    small, _, _ = make_nfs(env, cloud)
    big, _, _ = make_nfs(env2, cloud2, server_type="m2.4xlarge")
    assert big.cache_capacity > small.cache_capacity
    assert big._rpc_bw > small._rpc_bw
    # ...but not 2x despite 2x the cores (nfsd scaling knee).
    assert big._rpc_bw < 2 * small._rpc_bw


def test_lru_eviction_pins_dirty_files(env, cloud):
    fs, workers, server = make_nfs(env, cloud)
    # Shrink the cache so eviction is easy to trigger.
    fs.cache_capacity = 100 * MB
    meta_dirty = FileMetadata("dirty", 60 * MB)
    fs.declare_output(meta_dirty)

    def writer():
        yield from fs.write(workers[0], meta_dirty)

    env.process(writer())
    # Stop before the background flush completes.
    env.run(until=0.7)
    assert "dirty" in fs._dirty
    # Inserting a clean file over capacity must not evict the dirty one.
    fs._cache_insert("clean", 80 * MB, dirty=False)
    assert "dirty" in fs._cache
    assert "clean" not in fs._cache  # clean LRU went instead
    env.run()
    assert fs.flushes_completed == 1


def test_reads_of_hot_files_skip_disk(env, cloud):
    fs, workers, server = make_nfs(env, cloud)
    meta = FileMetadata("hot", 20 * MB)
    fs.stage_input(meta)

    def proc():
        yield from fs.read(workers[0], meta)   # cold: server disk
        yield from fs.read(workers[1], meta)   # hot: server cache

    run(env, proc())
    assert server.disk.reads == 1
    assert fs.stats.cache_hits == 1


def test_rpc_contention_degrades_per_client_throughput(env, cloud):
    """16 concurrent streams get much less than 2x the service of 8."""
    fs, workers, server = make_nfs(env, cloud, n_workers=8)
    metas = [FileMetadata(f"f{i}", 125 * MB) for i in range(16)]
    for m in metas:
        fs.stage_input(m)

    def timed(k):
        t0 = env.now
        procs = [env.process(reader(workers[i % 8], metas[i]))
                 for i in range(k)]
        yield env.all_of(procs)
        return env.now - t0

    def reader(w, m):
        yield from fs.read(w, m)

    t8 = env.run(until=env.process(timed(8)))
    # Invalidate client page caches so the second wave hits the server.
    for w in workers:
        pc = fs.page_cache_of(w)
        for m in metas:
            pc.invalidate(m.name)
    t16 = env.run(until=env.process(timed(16)))
    # Work conservation would predict t16 = 2*t8; contention makes it
    # clearly worse.
    assert t16 > 2.3 * t8


def test_dirty_quota_limits_outstanding_writeback(env, cloud):
    fs, workers, server = make_nfs(env, cloud)
    quota = fs._dirty_quota.capacity
    n = 6
    metas = [FileMetadata(f"b{i}", quota * 0.5) for i in range(n)]
    for m in metas:
        fs.declare_output(m)
    peak = [0.0]

    def writer(m):
        yield from fs.write(workers[0], m)
        peak[0] = max(peak[0], quota - fs._dirty_quota.level)

    for m in metas:
        env.process(writer(m))
    env.run()
    # Never more than the quota outstanding.
    assert peak[0] <= quota + 1e-6
    assert fs.flushes_completed == n


def test_flusher_is_single_stream(env, cloud):
    """Flushes drain sequentially: the server disk never sees more
    than one background write at a time."""
    fs, workers, server = make_nfs(env, cloud)
    metas = [FileMetadata(f"f{i}", 50 * MB) for i in range(5)]
    for m in metas:
        fs.declare_output(m)

    max_ops = [0]

    def watcher():
        while fs.flushes_completed < 5:
            max_ops[0] = max(max_ops[0], server.disk.active_ops)
            yield env.timeout(0.05)

    def writer(m):
        yield from fs.write(workers[0], m)

    env.process(watcher())
    for m in metas:
        env.process(writer(m))
    env.run()
    assert max_ops[0] <= 1
