"""Tests for the direct-transfer (future-work §VIII) storage mode."""

import pytest

from repro.cloud import MB
from repro.storage import DirectTransferStorage, FileMetadata, make_storage

from .conftest import run


def _p2p(env, cloud, n):
    workers = cloud.launch_many("c1.xlarge", n)
    fs = DirectTransferStorage(env)
    fs.deploy(workers)
    return fs, workers


def test_write_stays_local(env, cloud):
    fs, workers = _p2p(env, cloud, 4)
    meta = FileMetadata("f", 10 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers[2], meta)

    run(env, proc())
    assert fs.replicas_of("f") == {workers[2].name}
    assert fs.stats.remote_writes == 0
    assert workers[2].disk.writes == 1


def test_remote_read_pulls_and_caches(env, cloud):
    fs, workers = _p2p(env, cloud, 2)
    meta = FileMetadata("f", 50 * MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers[0], meta)
        yield from fs.read(workers[1], meta)   # pull across the wire
        yield from fs.read(workers[1], meta)   # now a local replica

    run(env, proc())
    assert fs.replicas_of("f") == {workers[0].name, workers[1].name}
    assert fs.stats.remote_reads == 1
    assert fs.stats.cache_hits >= 1


def test_concurrent_pulls_deduplicated(env, cloud):
    fs, workers = _p2p(env, cloud, 2)
    meta = FileMetadata("f", 40 * MB)
    fs.declare_output(meta)

    def writer():
        yield from fs.write(workers[0], meta)

    run(env, writer())
    net_flows_before = workers[0].network.flows.total_flows

    def reader():
        yield from fs.read(workers[1], meta)

    env.process(reader())
    env.process(reader())
    env.run()
    # One wire transfer served both concurrent readers.
    assert workers[0].network.flows.total_flows == net_flows_before + 1


def test_pull_prefers_less_loaded_holder(env, cloud):
    fs, workers = _p2p(env, cloud, 3)
    meta = FileMetadata("f", 20 * MB)
    fs.declare_output(meta)

    def seed():
        yield from fs.write(workers[0], meta)
        yield from fs.read(workers[1], meta)  # replica now on 0 and 1

    run(env, seed())
    assert len(fs.replicas_of("f")) == 2

    def reader():
        yield from fs.read(workers[2], meta)

    run(env, reader())
    assert workers[2].name in fs.replicas_of("f")


def test_missing_file_raises(env, cloud):
    fs, workers = _p2p(env, cloud, 2)
    meta = FileMetadata("ghost", MB)

    def proc():
        yield from fs.read(workers[0], meta)

    with pytest.raises(FileNotFoundError):
        run(env, proc())


def test_inputs_staged_round_robin(env, cloud):
    fs, workers = _p2p(env, cloud, 4)
    for i in range(8):
        fs.stage_input(FileMetadata(f"in{i}", MB))
    holders = [next(iter(fs.replicas_of(f"in{i}"))) for i in range(8)]
    assert holders == [w.name for w in workers] * 2


def test_factory_and_locality_inspection(env, cloud):
    fs = make_storage("p2p", env)
    workers = cloud.launch_many("c1.xlarge", 2)
    fs.deploy(workers)
    meta = FileMetadata("f", MB)
    fs.declare_output(meta)

    def proc():
        yield from fs.write(workers[0], meta)

    run(env, proc())
    assert "f" in fs.cached_on(workers[0])
    assert "f" not in fs.cached_on(workers[1])


def test_end_to_end_workflow_on_p2p(env, cloud):
    from repro.apps import build_synthetic
    from repro.workflow import PegasusWMS

    workers = cloud.launch_many("c1.xlarge", 4)
    fs = DirectTransferStorage(env)
    fs.deploy(workers)
    wms = PegasusWMS(env, workers, fs)
    wf = build_synthetic(n_tasks=40, width=10, seed=2)
    result = wms.execute(wf)
    assert result.n_jobs == 40
    assert result.makespan > 0
