"""The runtime determinism sanitizer.

Uses a tiny synthetic workflow on local storage so each traced run
costs milliseconds; the heavyweight cross-interpreter protocol runs in
CI (`repro-ec2 lint --determinism`), not here.
"""

from repro.lint import digest_run, first_divergence, format_digest_line
from repro.lint.determinism import canonical_event, parse_digest_line

SCENARIO = dict(app="synthetic", storage="local", nodes=1)


def test_repeat_run_is_bit_identical():
    a = digest_run(seed=3, **SCENARIO)
    b = digest_run(seed=3, **SCENARIO)
    assert a.digest == b.digest
    assert a.n_events == b.n_events
    assert a.makespan == b.makespan
    assert a.cost == b.cost


def test_many_runs_in_one_process_stay_identical():
    # Regression: span ids used to come from a process-global counter,
    # so the Nth run in an interpreter traced different ids than the
    # first.  Any module-global leaking into the trace reappears here.
    digests = {digest_run(seed=3, **SCENARIO).digest for _ in range(3)}
    assert len(digests) == 1


def test_digest_depends_on_seed():
    a = digest_run(seed=0, **SCENARIO)
    b = digest_run(seed=1, **SCENARIO)
    assert a.digest != b.digest


def test_digest_depends_on_scenario():
    a = digest_run(seed=0, **SCENARIO)
    b = digest_run(app="synthetic", storage="nfs", nodes=2, seed=0)
    assert a.digest != b.digest


def test_first_divergence_reports_index():
    a = digest_run(seed=0, keep_events=True, **SCENARIO)
    b = digest_run(seed=1, keep_events=True, **SCENARIO)
    assert first_divergence(a, a) is None
    div = first_divergence(a, b)
    assert div is not None
    idx, ea, eb = div
    assert ea != eb
    assert a.events[idx] == ea


def test_digest_line_round_trip():
    run = digest_run(seed=3, **SCENARIO)
    line = format_digest_line(run)
    parsed = parse_digest_line(line)
    assert parsed.digest == run.digest
    assert parsed.n_events == run.n_events
    # repr() round-trips floats exactly — no precision loss on the wire.
    assert parsed.makespan == run.makespan
    assert parsed.cost == run.cost


def test_canonical_event_is_order_and_type_stable():
    one = canonical_event(1.5, "task", "start", {"b": 2, "a": 1})
    two = canonical_event(1.5, "task", "start", {"a": 1, "b": 2})
    assert one == two
    # Typed tags keep equal-looking values of different types distinct.
    assert canonical_event(0.0, "c", "e", {"v": 1}) \
        != canonical_event(0.0, "c", "e", {"v": "1"})
    assert canonical_event(0.0, "c", "e", {"v": True}) \
        != canonical_event(0.0, "c", "e", {"v": 1})


def test_trace_collector_ids_reset_per_run():
    from repro.simcore.tracing import TraceCollector
    collector = TraceCollector()
    assert [collector.next_id() for _ in range(3)] == [1, 2, 3]
    collector.clear()
    assert collector.next_id() == 1
