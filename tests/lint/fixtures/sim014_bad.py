"""Fixture: Condition calls outside its with block (SIM014 must fire
three times)."""

import threading

cond = threading.Condition()


def wait_ready():
    cond.wait(timeout=1.0)


def mark_ready():
    cond.notify()


def broadcast():
    cond.notify_all()
