"""Fixture: exact float equality on sim-time (SIM004 must fire once)."""


def fired(env, deadline):
    return env.now == deadline
