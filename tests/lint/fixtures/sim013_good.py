"""Fixture: threads with declared lifecycles (SIM013 quiet)."""

import threading


def fire_and_forget(task):
    threading.Thread(target=task, daemon=True).start()


def run_and_wait(task):
    worker = threading.Thread(target=task)
    worker.start()
    worker.join()
