"""Fixture: swallowing broad excepts (SIM007 must fire twice)."""


def drive(step):
    try:
        step()
    except Exception:
        pass
    try:
        step()
    except:  # noqa: E722
        return None
