"""Fixture: global random streams (SIM002 must fire twice)."""

import random

import numpy as np


def jitter():
    a = random.random()
    b = np.random.rand()
    return a + b
