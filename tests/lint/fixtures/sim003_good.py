"""Fixture: sorted set iteration (SIM003 must stay quiet)."""

from typing import Set


def order_tasks(ready: Set[str]):
    out = []
    for tid in sorted(ready):
        out.append(tid)
    first = [t for t in sorted(ready)]
    return out, first
