"""Fixture: event-heap access outside the kernel (SIM008 fires 4x).

Only meaningful when linted under a non-kernel virtual filename.
"""

import heapq


def schedule(env, event, heap):
    heapq.heappush(heap, event)
    env._queue_event(event)
    return env._queue
