"""Fixture: simulation time only (SIM001 must stay quiet)."""


def stamp(env):
    return env.now
