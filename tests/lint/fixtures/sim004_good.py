"""Fixture: tolerant / ordered time checks (SIM004 must stay quiet)."""


def fired(env, deadline):
    if env.now >= deadline:
        return True
    return abs(env.now - deadline) < 1e-9


def is_start(start_time):
    # Equality with a literal zero sentinel is exact and allowed.
    return start_time == 0.0
