"""Fixture: propagating handlers (SIM007 must stay quiet)."""


def drive(step, event):
    try:
        step()
    except ValueError:
        pass
    try:
        step()
    except Exception as exc:
        event.fail(exc)
    try:
        step()
    except Exception:
        raise
