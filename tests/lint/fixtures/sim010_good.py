"""Fixture: disciplined lock usage (SIM010 quiet)."""

import threading

from repro.lint.lockwatch import new_lock

_lock = threading.Lock()
_fast = new_lock("fixture.fast")


def update(registry):
    with _lock:
        registry["jobs"] = registry.get("jobs", 0) + 1


def update_try_finally(registry):
    _fast.acquire()
    try:
        registry["jobs"] = 0
    finally:
        _fast.release()


class Transaction:
    """The sanctioned cross-method pairing: __enter__ / __exit__."""

    def __init__(self):
        self._lock = threading.RLock()

    def __enter__(self):
        self._lock.acquire()
        return self

    def __exit__(self, *exc):
        self._lock.release()
