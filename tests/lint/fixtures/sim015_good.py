"""Good: every environment's kernel owns its own buffers."""
import numpy as np

_INITIAL_ROWS = 64  # plain constants at module scope are fine


class Kernel:
    VEC_FILL_MIN = 32  # scalar class attributes are fine

    def __init__(self, env):
        self.env = env
        # Per-instance allocation: lifetime tied to one environment.
        self._rates = np.zeros(_INITIAL_ROWS)
        self._ids = np.full(_INITIAL_ROWS, -1)

    def grow(self):
        grown = np.empty(len(self._ids) * 2)  # function-local: fine
        grown[: len(self._ids)] = self._ids
        self._ids = grown
