"""Fixture: bare lock acquires (SIM010 must fire three times)."""

import threading

_lock = threading.Lock()
_lock.acquire()  # module level: no function to put a finally in


def update_no_release(registry):
    _lock.acquire()
    registry["jobs"] = registry.get("jobs", 0) + 1


class Holder:
    def __init__(self):
        self._lock = threading.RLock()
        self.value = 0

    def bump(self):
        self._lock.acquire()
        self.value += 1
        self._lock.release()  # not in a finally: an exception above leaks
