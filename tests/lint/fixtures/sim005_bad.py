"""Fixture: unprotected release (SIM005 must fire once).

Only meaningful when linted under a scheduling-path virtual filename.
"""


def run_job(resource, work):
    req = resource.request()
    yield req
    yield from work()
    resource.release(req)
