"""Fixture: blocking work outside the critical section (SIM011 quiet)."""

import sqlite3
import threading
import time

_lock = threading.Lock()
conn = sqlite3.connect(":memory:")


def slow_refresh(registry):
    time.sleep(0.5)  # block first...
    with _lock:
        registry["fresh"] = True  # ...lock only around the update


def persist(registry):
    rows = conn.execute("SELECT 1").fetchall()
    with _lock:
        registry["rows"] = rows
