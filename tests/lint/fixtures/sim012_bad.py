"""Fixture: unguarded module-level mutable state (SIM012 must fire
twice)."""

registry = {}
pending_jobs = []
