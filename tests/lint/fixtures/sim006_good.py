"""Fixture: None default with inner construction (SIM006 quiet)."""


def collect(item, acc=None):
    if acc is None:
        acc = []
    acc.append(item)
    return acc
