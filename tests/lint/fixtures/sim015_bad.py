"""Bad: numpy scratch buffers shared across every kernel instance."""
import numpy

import numpy as np

_SCRATCH = np.empty(256)  # module-level scratch buffer


class Kernel:
    _RATES = np.zeros(64)  # class attribute: one buffer for all instances
    _IDS: "np.ndarray" = numpy.full(64, -1)  # ditto, via AnnAssign

    def __init__(self, env):
        self.env = env

    def fill(self):
        _SCRATCH[: len(self._RATES)] = self._RATES
