"""Fixture: guarded, constant, or immutable module state (SIM012 quiet)."""

registry = {}  # lint: guarded-by[_lock]
DEFAULT_LIMITS = {"jobs": 4, "cells": 64}
_SEEN = set()
known_apps = frozenset({"montage", "epigenome"})
