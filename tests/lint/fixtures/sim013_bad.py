"""Fixture: threads with accidental lifecycles (SIM013 must fire twice)."""

import threading


def fire_and_forget(task):
    threading.Thread(target=task).start()


def spawn(task):
    worker = threading.Thread(target=task)
    worker.start()
    return worker
