"""Fixture: host observability inside the kernel (SIM009 fires 7x)."""

import time

from repro.observe import hostclock
from repro.service.chaos import WorkerKilled

from ..observe.monitor import SweepMonitor
from ..service.resilience import HostRetryPolicy


def measure(env):
    t0 = time.perf_counter()
    wall = hostclock.wall_now()
    return SweepMonitor, env.now, t0, wall, WorkerKilled, HostRetryPolicy
