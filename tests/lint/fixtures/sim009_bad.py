"""Fixture: host observability inside the kernel (SIM009 fires 4x)."""

import time

from repro.observe import hostclock

from ..observe.monitor import SweepMonitor


def measure(env):
    t0 = time.perf_counter()
    wall = hostclock.wall_now()
    return SweepMonitor, env.now, t0, wall
