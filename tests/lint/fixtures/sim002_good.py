"""Fixture: seeded generators only (SIM002 must stay quiet)."""

import numpy as np

from repro.simcore.rand import substream


def jitter(seed):
    rng = substream(seed, "jitter")
    gen = np.random.default_rng(seed)
    return rng.normal(), gen.random()
