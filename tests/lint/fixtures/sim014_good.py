"""Fixture: Condition calls under its lock; Event untracked (SIM014
quiet)."""

import threading

cond = threading.Condition()
stop = threading.Event()


def wait_ready(deadline):
    with cond:
        cond.wait_for(stop.is_set, timeout=deadline)


def mark_ready():
    with cond:
        cond.notify_all()


def pause():
    stop.wait(timeout=0.1)  # Event.wait is sanctioned lock-free sleeping
