"""Fixture: mutable default arguments (SIM006 must fire twice)."""


def collect(item, acc=[]):
    acc.append(item)
    return acc


def index(key, table={}):
    return table.setdefault(key, len(table))
