"""Fixture: release under finally (SIM005 must stay quiet)."""


def run_job(resource, work):
    req = resource.request()
    yield req
    try:
        yield from work()
    finally:
        resource.release(req)
