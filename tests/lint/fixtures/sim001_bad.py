"""Fixture: wall-clock reads (SIM001 must fire twice)."""

import time
from datetime import datetime


def stamp():
    started = time.time()
    return started, datetime.now()
