"""Fixture: scheduling through the public API (SIM008 quiet)."""


def schedule(env, duration):
    return env.timeout(duration)
