"""Fixture: hash-ordered set iteration (SIM003 must fire twice).

Only meaningful when linted under a scheduling-path virtual filename
(e.g. ``repro/workflow/...``).
"""

from typing import Set


def order_tasks(ready: Set[str]):
    out = []
    for tid in ready:
        out.append(tid)
    first = [t for t in ready]
    return out, first
