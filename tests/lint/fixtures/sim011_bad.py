"""Fixture: blocking calls under a lock (SIM011 must fire three times)."""

import sqlite3
import subprocess
import threading
import time

_lock = threading.Lock()
conn = sqlite3.connect(":memory:")


def slow_refresh(registry):
    with _lock:
        time.sleep(0.5)
        registry["fresh"] = True


def persist(row):
    with _lock:
        conn.execute("INSERT INTO t VALUES (?)", row)


def shell_out(cmd):
    with _lock:
        return subprocess.run(cmd, check=True)
