"""Fixture: kernel code on sim time only (SIM009 must stay quiet)."""


def measure(env, trace):
    # Sim-time telemetry is fine: the kernel emits into the trace and
    # the host-side monitor observes the *worker* from outside.
    trace.emit(env.now, "task", "end", duration=env.now)
    return env.now
