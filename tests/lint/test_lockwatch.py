"""Runtime lock witness: unit tests and determinism invariance.

The synthetic cases prove the watcher *can* see each failure class
(order inversion, hold-time, guarded-by); the clean-run cases prove it
reports nothing on the real service's disciplined paths; the digest
cases prove installing it never perturbs simulation output — the
property that lets the chaos suite run every seed as a lock witness.
"""

import threading

import pytest

from repro.lint import (
    LockWatcher,
    current_watcher,
    guard,
    install_watcher,
    new_condition,
    new_lock,
    new_rlock,
    uninstall_watcher,
)
from repro.lint.determinism import digest_run


@pytest.fixture
def watcher():
    w = install_watcher(hold_threshold=30.0)
    try:
        yield w
    finally:
        uninstall_watcher()


def _kinds(w):
    return [f.kind for f in w.findings]


# -- the disabled seam ------------------------------------------------------


def test_disabled_factories_return_raw_primitives():
    # Zero overhead when no watcher is installed: the factories hand
    # out the plain threading primitives and guard() is the identity.
    assert current_watcher() is None
    assert type(new_lock("x")) is type(threading.Lock())  # noqa: E721
    assert type(new_rlock("x")) is type(threading.RLock())  # noqa: E721
    assert isinstance(new_condition("x"), threading.Condition)
    d = {"a": 1}
    assert guard(d, lock="x", name="d") is d
    assert type(guard(d, lock="x", name="d")) is dict  # noqa: E721


def test_install_twice_raises():
    install_watcher()
    try:
        with pytest.raises(RuntimeError):
            install_watcher()
    finally:
        uninstall_watcher()
    assert current_watcher() is None


# -- lock-order graph -------------------------------------------------------


def test_lock_order_inversion_detected(watcher):
    a, b = new_lock("wit.a"), new_lock("wit.b")
    with a:
        with b:
            pass
    assert watcher.ok  # one direction alone is fine
    with b:
        with a:
            pass
    assert _kinds(watcher) == ["lock-order-inversion"]
    finding = watcher.findings[0]
    assert "wit.a" in finding.message and "wit.b" in finding.message
    assert finding.stacks  # carries the acquisition stacks
    assert "lock-order-inversion" in watcher.format_report()


def test_consistent_order_stays_clean(watcher):
    a, b, c = new_lock("wit.a"), new_lock("wit.b"), new_lock("wit.c")
    for _ in range(3):
        with a:
            with b:
                with c:
                    pass
    assert watcher.ok
    assert watcher.edge_count() >= 2


def test_three_lock_cycle_detected(watcher):
    a, b, c = new_lock("wit.a"), new_lock("wit.b"), new_lock("wit.c")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:
            pass
    assert "lock-order-inversion" in _kinds(watcher)


def test_rlock_reentry_is_not_a_cycle(watcher):
    r = new_rlock("wit.r")
    with r:
        with r:  # reentrant re-acquire: no self-edge, no finding
            pass
    assert watcher.ok


def test_same_name_means_same_node(watcher):
    # Two instances built under one factory name share a graph node
    # (lock-class ordering), so instance A -> B and B -> A of the same
    # class collapse to a self-edge, which is ignored.
    a1, a2 = new_lock("wit.same"), new_lock("wit.same")
    with a1:
        with a2:
            pass
    with a2:
        with a1:
            pass
    assert watcher.ok


# -- hold time --------------------------------------------------------------


def test_hold_time_finding():
    w = install_watcher(hold_threshold=0.01)
    try:
        lock = new_lock("wit.slow")
        import time
        with lock:
            time.sleep(0.05)
        assert _kinds(w) == ["hold-time"]
        assert "wit.slow" in w.findings[0].message
    finally:
        uninstall_watcher()


def test_fast_hold_stays_clean(watcher):
    lock = new_lock("wit.fast")
    with lock:
        pass
    assert watcher.ok


# -- guarded containers -----------------------------------------------------


def test_guarded_dict_violation(watcher):
    lock = new_lock("wit.guard")
    counts = guard({"a": 0}, lock="wit.guard", name="wit.counts")
    counts["a"] += 1  # mutation off-lock: flagged
    assert _kinds(watcher) == ["guarded-by"]
    assert "wit.counts" in watcher.findings[0].message
    with lock:
        counts["a"] += 1  # under the declared lock: clean
    assert len(watcher.findings) == 1
    assert counts["a"] == 2  # still behaves as a dict
    assert watcher.n_guard_checks == 2


def test_guarded_dict_reads_are_free(watcher):
    counts = guard({"a": 1}, lock="wit.guard", name="wit.counts")
    assert counts["a"] == 1
    assert counts.get("b") is None
    assert list(counts) == ["a"]
    assert watcher.ok
    assert watcher.n_guard_checks == 0


def test_guarded_dict_checks_every_mutator(watcher):
    counts = guard({}, lock="wit.guard", name="wit.counts")
    counts["k"] = 1
    counts.update(j=2)
    counts.setdefault("m", 3)
    counts.pop("k")
    del counts["j"]
    counts.clear()
    assert watcher.n_guard_checks == 6
    assert all(k == "guarded-by" for k in _kinds(watcher))


# -- watched condition ------------------------------------------------------


def test_watched_condition_wait_notify(watcher):
    cond = new_condition("wit.cond")
    state = {"ready": False}

    def producer():
        with cond:
            state["ready"] = True
            cond.notify_all()

    t = threading.Thread(target=producer, daemon=True)
    with cond:
        t.start()
        assert cond.wait_for(lambda: state["ready"], timeout=5.0)
    t.join(timeout=5.0)
    assert watcher.ok
    # wait_for released and re-acquired the lock: >= 3 acquisitions.
    assert watcher.n_acquires >= 3


# -- the real service under the witness -------------------------------------


def test_real_store_traffic_is_clean(watcher, tmp_path):
    from repro.service.store import SQLiteStore

    store = SQLiteStore(str(tmp_path / "w.db"))
    try:
        store.put_result("d1", "cell-1", "{}")
        assert store.get_result("d1") == "{}"
        with store.transaction() as conn:
            conn.execute(
                "INSERT INTO results (digest, label, created_ts, payload) "
                "VALUES (?, ?, ?, ?)", ("d2", "cell-2", 0.0, "{}"))
        assert store.result_count() == 2
    finally:
        store.close()
    assert watcher.ok, watcher.format_report()
    assert watcher.n_acquires > 0  # the witness actually saw the locks


def test_breaker_and_retry_are_clean(watcher):
    from repro.service.resilience import CircuitBreaker, HostRetryPolicy

    breaker = CircuitBreaker(name="wit", failure_threshold=2,
                             cooldown_seconds=0.0)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state in ("open", "half_open")
    breaker.record_success()
    policy = HostRetryPolicy(max_attempts=3, base_delay=0.0,
                             max_delay=0.0, name="wit",
                             sleep=lambda _s: None)
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ValueError("boom")
        return "ok"

    assert policy.call(flaky, retry_on=(ValueError,)) == "ok"
    assert watcher.ok, watcher.format_report()


def test_chaos_schedule_counters_are_guard_checked(watcher):
    from repro.service.chaos import ChaosSchedule, ChaosSpec

    schedule = ChaosSchedule(ChaosSpec(seed=1, store_error_rate=1.0))
    assert schedule.store_action() == "error"
    assert schedule.injected["store.error"] == 1  # snapshot read: free
    assert watcher.n_guard_checks >= 1
    assert watcher.ok, watcher.format_report()


# -- determinism invariance -------------------------------------------------


def test_digest_bit_identical_under_watcher():
    # The witness lives entirely on the host side: installing it must
    # not change a single byte of the simulation's event stream.
    bare = digest_run(app="montage", storage="nfs", nodes=2, seed=3)
    install_watcher()
    try:
        watched = digest_run(app="montage", storage="nfs", nodes=2, seed=3)
    finally:
        w = uninstall_watcher()
    assert watched.digest == bare.digest
    assert watched.n_events == bare.n_events
    assert repr(watched.makespan) == repr(bare.makespan)
    assert w is not None and w.ok


def test_serial_vs_parallel_sweep_identical_under_watcher():
    # Process-pool workers re-run cells in fresh interpreters (no
    # watcher there); the parent-side merge runs under the witness.
    # Results must stay bit-identical either way.
    from repro.experiments import ExperimentConfig, run_sweep
    from repro.lint.determinism import small_workflow

    configs = [ExperimentConfig("synthetic", "nfs", 2, seed=s,
                                cpu_jitter_sigma=0.05,
                                collect_traces=True)
               for s in (0, 1)]
    wf = small_workflow("synthetic")
    install_watcher()
    try:
        serial = run_sweep(configs, workflow=wf, jobs=1)
        parallel = run_sweep(configs, workflow=wf, jobs=2)
    finally:
        uninstall_watcher()
    for s, p in zip(serial, parallel):
        assert repr(s.run.makespan) == repr(p.run.makespan)
        assert s.metrics.to_json() == p.metrics.to_json()


def test_findings_capped():
    w = LockWatcher(max_findings=2)
    for i in range(5):
        w.on_guard_violation(f"c{i}", "lck")
    assert len(w.findings) == 2
