"""Regression pins: the shipped tree lints clean.

These tests lint the *installed* repro package from disk, so a future
edit that reintroduces hash-ordered iteration into the scheduling
layer (condor/dagman/storage) fails here as well as in the CI gate.
"""

import os

import repro
from repro.lint import lint_paths

PKG_DIR = os.path.dirname(os.path.abspath(repro.__file__))

#: The scheduling-path modules the SIM003 sweep originally audited.
SCHEDULING_FILES = [
    os.path.join(PKG_DIR, "workflow", "condor.py"),
    os.path.join(PKG_DIR, "workflow", "dagman.py"),
    os.path.join(PKG_DIR, "workflow", "dag.py"),
    os.path.join(PKG_DIR, "storage", "gluster.py"),
]


def test_scheduling_modules_have_no_unordered_iteration():
    report = lint_paths(SCHEDULING_FILES, select=["SIM003"])
    assert report.n_files == len(SCHEDULING_FILES)
    assert report.findings == [], [f.format() for f in report.findings]


def test_whole_package_lints_clean():
    report = lint_paths([PKG_DIR])
    assert report.parse_errors == []
    assert report.findings == [], [f.format() for f in report.findings]
    # Sanctioned suppressions only: the dag.py set->set updates, the
    # sweep/worker supervisors' catch-alls (a cell failure must become
    # a placeholder/failed job, never kill the pool), and the HTTP
    # layer's 500 handler.  New ones are a conscious, reviewed choice.
    assert len(report.suppressed) <= 6


def test_input_bytes_is_order_independent():
    # dag.input_bytes sums float sizes over a set of names; the sum
    # must not depend on insertion (and hence iteration) order.
    from repro.workflow.dag import Workflow

    sizes = [0.1 * (i + 1) + 1e9 for i in range(12)]

    def build(order):
        wf = Workflow("t")
        for i in order:
            wf.add_file(f"f{i}", sizes[i], is_input=True)
        return wf

    forward = build(range(12))
    backward = build(reversed(range(12)))
    assert forward.input_bytes() == backward.input_bytes()
