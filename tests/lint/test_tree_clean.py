"""Regression pins: the shipped tree lints clean.

These tests lint the *installed* repro package from disk, so a future
edit that reintroduces hash-ordered iteration into the scheduling
layer (condor/dagman/storage) fails here as well as in the CI gate.
"""

import os

import repro
from repro.lint import lint_paths

PKG_DIR = os.path.dirname(os.path.abspath(repro.__file__))

#: Every inline ignore the package tree is allowed to carry, exactly:
#: the dag.py set->set updates (2x SIM003), the sweep/worker
#: supervisors' catch-alls (runner.py + worker.py x2 SIM007 — a cell
#: failure must become a placeholder/failed job, never kill the pool),
#: the HTTP layer's 500 handler (api.py SIM007), and the tracing
#: wall-clock seam (tracing.py SIM004).  A new suppression is a
#: conscious, reviewed choice: bump this constant in the same commit
#: and say why here.
SANCTIONED_SUPPRESSIONS = 7

#: The scheduling-path modules the SIM003 sweep originally audited.
SCHEDULING_FILES = [
    os.path.join(PKG_DIR, "workflow", "condor.py"),
    os.path.join(PKG_DIR, "workflow", "dagman.py"),
    os.path.join(PKG_DIR, "workflow", "dag.py"),
    os.path.join(PKG_DIR, "storage", "gluster.py"),
]


def test_scheduling_modules_have_no_unordered_iteration():
    report = lint_paths(SCHEDULING_FILES, select=["SIM003"])
    assert report.n_files == len(SCHEDULING_FILES)
    assert report.findings == [], [f.format() for f in report.findings]


def test_whole_package_lints_clean():
    report = lint_paths([PKG_DIR])
    assert report.parse_errors == []
    assert report.findings == [], [f.format() for f in report.findings]
    # Pinned exactly, not <=: a suppression silently *disappearing* is
    # as reviewable an event as a new one appearing (it means the code
    # it excused changed).  The roster lives on SANCTIONED_SUPPRESSIONS.
    assert len(report.suppressed) == SANCTIONED_SUPPRESSIONS, \
        [s.format() for s in report.suppressed]


def test_host_side_fence_sanctions_resilience_and_chaos():
    # The chaos/resilience modules sleep, read the host clock, and
    # catch broadly by design; they are sanctioned *because* they live
    # under repro/service/ (inside the SIM001/SIM009 host-side fence)
    # and must lint clean there without a single new suppression.
    files = [
        os.path.join(PKG_DIR, "service", "resilience.py"),
        os.path.join(PKG_DIR, "service", "chaos.py"),
    ]
    report = lint_paths(files)
    assert report.n_files == len(files)
    assert report.findings == [], [f.format() for f in report.findings]
    assert report.suppressed == [], \
        [s.format() for s in report.suppressed]


def test_kernel_cannot_import_chaos_or_resilience():
    # The same code linted as if it sat on a kernel path must trip the
    # SIM009 fence: host-side fault injection may never leak into the
    # deterministic simulation.
    from repro.lint import lint_source

    source = ("from repro.service.chaos import ChaosSchedule\n"
              "from repro.service.resilience import HostRetryPolicy\n")
    findings = lint_source(source, path="repro/simcore/kernel.py",
                           select=["SIM009"])
    assert len(findings) == 2
    assert all(f.rule_id == "SIM009" for f in findings)


def test_input_bytes_is_order_independent():
    # dag.input_bytes sums float sizes over a set of names; the sum
    # must not depend on insertion (and hence iteration) order.
    from repro.workflow.dag import Workflow

    sizes = [0.1 * (i + 1) + 1e9 for i in range(12)]

    def build(order):
        wf = Workflow("t")
        for i in order:
            wf.add_file(f"f{i}", sizes[i], is_input=True)
        return wf

    forward = build(range(12))
    backward = build(reversed(range(12)))
    assert forward.input_bytes() == backward.input_bytes()
