"""Baseline round-trip and inline-suppression behaviour."""

import pytest

from repro.lint import (
    Baseline,
    SuppressionMap,
    fingerprint_findings,
    lint_source,
    load_baseline,
    write_baseline,
)

BAD = """\
def collect(item, acc=[]):
    acc.append(item)
    return acc
"""


def test_baseline_round_trip(tmp_path):
    findings = lint_source(BAD, path="pkg/mod.py", select=["SIM006"])
    assert len(findings) == 1
    path = str(tmp_path / "baseline.json")
    write_baseline(path, findings)
    loaded = load_baseline(path)
    assert len(loaded) == 1
    new, known = loaded.partition(findings)
    assert new == [] and len(known) == 1


def test_baseline_survives_line_shift(tmp_path):
    findings = lint_source(BAD, path="pkg/mod.py", select=["SIM006"])
    path = str(tmp_path / "baseline.json")
    write_baseline(path, findings)
    # The same violation three lines lower must still be recognised.
    shifted = lint_source("\n\n\n" + BAD, path="pkg/mod.py",
                          select=["SIM006"])
    assert shifted[0].line == findings[0].line + 3
    new, known = load_baseline(path).partition(shifted)
    assert new == [] and len(known) == 1


def test_duplicate_findings_not_over_hidden(tmp_path):
    one = lint_source(BAD, path="pkg/mod.py", select=["SIM006"])
    path = str(tmp_path / "baseline.json")
    write_baseline(path, one)
    # A second identical violation in the same file is NEW: the
    # baseline accepted exactly one occurrence.
    two = lint_source(BAD + "\n\n" + BAD.replace("collect", "collect2"),
                      path="pkg/mod.py", select=["SIM006"])
    assert len(two) == 2
    new, known = load_baseline(path).partition(two)
    assert len(known) == 1 and len(new) == 1


def test_fingerprints_distinguish_duplicates():
    two = lint_source(BAD + "\n\n" + BAD.replace("collect", "collect2"),
                      path="pkg/mod.py", select=["SIM006"])
    prints = fingerprint_findings(two)
    assert len(set(prints)) == 2


def test_empty_baseline_hides_nothing():
    findings = lint_source(BAD, path="pkg/mod.py", select=["SIM006"])
    new, known = Baseline().partition(findings)
    assert len(new) == 1 and known == []


def test_load_baseline_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"not": "a baseline"}')
    with pytest.raises(ValueError):
        load_baseline(str(path))
    path.write_text('{"version": 99, "fingerprints": []}')
    with pytest.raises(ValueError):
        load_baseline(str(path))


# ----------------------------------------------------------- suppressions


def test_inline_ignore_specific_rule():
    src = "def collect(item, acc=[]):  # lint: ignore[SIM006]\n    return acc\n"
    findings = lint_source(src, path="pkg/mod.py", select=["SIM006"])
    assert len(findings) == 1 and findings[0].suppressed


def test_inline_ignore_wrong_rule_does_not_cover():
    src = "def collect(item, acc=[]):  # lint: ignore[SIM001]\n    return acc\n"
    findings = lint_source(src, path="pkg/mod.py", select=["SIM006"])
    assert len(findings) == 1 and not findings[0].suppressed


def test_bare_ignore_covers_all_rules():
    src = "def collect(item, acc=[]):  # lint: ignore\n    return acc\n"
    findings = lint_source(src, path="pkg/mod.py", select=["SIM006"])
    assert findings[0].suppressed


def test_ignore_list_of_rules():
    src = ("def collect(item, acc=[]):  # lint: ignore[SIM001, SIM006]\n"
           "    return acc\n")
    findings = lint_source(src, path="pkg/mod.py", select=["SIM006"])
    assert findings[0].suppressed


def test_skip_file_directive():
    src = "# lint: skip-file\n" + BAD
    findings = lint_source(src, path="pkg/mod.py", select=["SIM006"])
    assert all(f.suppressed for f in findings)


def test_skip_file_only_in_header_window():
    src = "\n" * 20 + "# lint: skip-file\n" + BAD
    findings = lint_source(src, path="pkg/mod.py", select=["SIM006"])
    assert any(not f.suppressed for f in findings)


def test_suppression_map_directive_count():
    smap = SuppressionMap("x = 1  # lint: ignore[SIM004]\ny = 2\n")
    assert smap.n_directives == 1
    assert smap.covers(1, "SIM004")
    assert not smap.covers(1, "SIM006")
    assert not smap.covers(2, "SIM004")
