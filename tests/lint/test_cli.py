"""The ``repro-ec2 lint`` subcommand: exit codes, formats, baseline."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "sim006_bad.py")
GOOD = str(FIXTURES / "sim006_good.py")


def test_lint_clean_file_exits_zero(capsys):
    assert main(["lint", GOOD]) == 0
    err = capsys.readouterr().err
    assert "0 finding(s)" in err


def test_lint_bad_file_exits_one(capsys):
    assert main(["lint", BAD]) == 1
    out = capsys.readouterr().out
    assert "SIM006" in out and "sim006_bad.py" in out


def test_lint_select_filters_rules(capsys):
    assert main(["lint", BAD, "--select", "SIM001"]) == 0
    capsys.readouterr()


def test_lint_json_format(capsys):
    assert main(["lint", BAD, "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["files"] == 1
    assert doc["counts_by_rule"] == {"SIM006": 2}
    assert all(f["rule"] == "SIM006" for f in doc["findings"])
    assert all("fingerprint" in f for f in doc["findings"])


def test_lint_write_then_use_baseline(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", BAD, "--baseline", baseline,
                 "--write-baseline"]) == 0
    capsys.readouterr()
    # With the recorded baseline the same findings are accepted ...
    assert main(["lint", BAD, "--baseline", baseline]) == 0
    err = capsys.readouterr().err
    assert "2 baselined" in err
    # ... but they are baselined, not gone: a fresh run without the
    # baseline still fails.
    assert main(["lint", BAD]) == 1
    capsys.readouterr()


def test_lint_bad_baseline_exits_two(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    assert main(["lint", BAD, "--baseline", str(bogus)]) == 2
    capsys.readouterr()


def test_lint_directory_walk(capsys):
    # The fixtures directory contains known-bad files: linting the
    # whole directory must find them (scoped rules stay inactive since
    # fixture paths are not scheduling modules).
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "SIM006" in out
