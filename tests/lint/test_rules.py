"""Per-rule fixture tests: every SIMxxx rule fires on its known-bad
fixture and stays quiet on the known-good one."""

from pathlib import Path

import pytest

from repro.lint import RULES, Severity, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (fixture stem, virtual path the fixture is linted under,
#: expected finding count in the bad fixture).  Scoped rules (SIM003,
#: SIM005, SIM008) need a scheduling-path filename to activate; the
#: thread-safety rules (SIM010-SIM014) need a threaded-package one.
CASES = {
    "SIM001": ("sim001", "repro/experiments/runner.py", 2),
    "SIM002": ("sim002", "repro/experiments/runner.py", 2),
    "SIM003": ("sim003", "repro/workflow/scheduler.py", 2),
    "SIM004": ("sim004", "repro/simcore/clock.py", 1),
    "SIM005": ("sim005", "repro/workflow/slots.py", 1),
    "SIM006": ("sim006", "repro/telemetry/collect.py", 2),
    "SIM007": ("sim007", "repro/workflow/driver.py", 2),
    "SIM008": ("sim008", "repro/workflow/scheduler.py", 4),
    "SIM009": ("sim009", "repro/simcore/kernel.py", 7),
    "SIM010": ("sim010", "repro/service/store.py", 3),
    "SIM011": ("sim011", "repro/service/worker.py", 3),
    "SIM012": ("sim012", "repro/observe/monitor.py", 2),
    "SIM013": ("sim013", "repro/service/api.py", 2),
    "SIM014": ("sim014", "repro/service/worker.py", 3),
    "SIM015": ("sim015", "repro/simcore/fastnet.py", 3),
}


def _lint_fixture(stem: str, suffix: str, path: str, rule_id: str):
    source = (FIXTURES / f"{stem}_{suffix}.py").read_text()
    return lint_source(source, path=path, select=[rule_id])


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_fixture_fires(rule_id):
    stem, path, expected = CASES[rule_id]
    findings = _lint_fixture(stem, "bad", path, rule_id)
    assert len(findings) == expected, [f.format() for f in findings]
    assert all(f.rule_id == rule_id for f in findings)
    assert all(not f.suppressed for f in findings)
    assert all(f.line > 0 for f in findings)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_good_fixture_quiet(rule_id):
    stem, path, _ = CASES[rule_id]
    findings = _lint_fixture(stem, "good", path, rule_id)
    assert findings == [], [f.format() for f in findings]


def test_every_rule_has_a_case():
    assert sorted(CASES) == sorted(RULES)


def test_cases_match_fixture_files():
    # The fixture directory is the source of truth: every sim*_bad.py /
    # sim*_good.py pair must be wired into CASES and vice versa, so a
    # new rule cannot land half-tested.
    stems = {p.name.rsplit("_", 1)[0]
             for p in FIXTURES.glob("sim*_*.py")}
    assert stems == {stem for stem, _, _ in CASES.values()}
    for stem, _, _ in CASES.values():
        assert (FIXTURES / f"{stem}_bad.py").is_file()
        assert (FIXTURES / f"{stem}_good.py").is_file()


@pytest.mark.parametrize("rule_id,path", [
    ("SIM003", "repro/telemetry/collect.py"),
    ("SIM005", "repro/apps/montage.py"),
    ("SIM009", "repro/experiments/runner.py"),
    ("SIM015", "repro/experiments/runner.py"),
])
def test_scoped_rules_inactive_off_scheduling_path(rule_id, path):
    stem, _, _ = CASES[rule_id]
    source = (FIXTURES / f"{stem}_bad.py").read_text()
    assert lint_source(source, path=path, select=[rule_id]) == []


@pytest.mark.parametrize("rule_id", ["SIM010", "SIM011", "SIM012",
                                     "SIM013", "SIM014"])
def test_thread_rules_inactive_outside_threaded_packages(rule_id):
    # The kernel is single-threaded by contract; the thread-safety
    # rules must stay silent there even on their own bad fixtures.
    stem, _, _ = CASES[rule_id]
    source = (FIXTURES / f"{stem}_bad.py").read_text()
    assert lint_source(source, path="repro/simcore/kernel.py",
                       select=[rule_id]) == []


def test_sim012_guard_annotation_is_not_a_suppression():
    # guarded-by documents the lock; it must not count as an inline
    # ignore directive anywhere in the reporting.
    source = "registry = {}  # lint: guarded-by[_lock]\n"
    findings = lint_source(source, path="repro/service/api.py",
                           select=["SIM012"])
    assert findings == []
    from repro.lint import SuppressionMap
    supp = SuppressionMap(source)
    assert supp.n_directives == 0
    assert supp.guard_at(1) == "_lock"
    assert supp.guard_at(2) is None


def test_sim008_allowed_inside_kernel():
    source = (FIXTURES / "sim008_bad.py").read_text()
    findings = lint_source(source, path="repro/simcore/engine.py",
                           select=["SIM008"])
    assert findings == []


def test_sim001_exempts_host_observe_package():
    # repro/observe is the sanctioned wall-clock location; SIM001 must
    # not fire there, without any inline suppressions.
    source = (FIXTURES / "sim001_bad.py").read_text()
    findings = lint_source(source, path="repro/observe/hostclock.py",
                           select=["SIM001"])
    assert findings == []


def test_sim009_counts_dotted_chain_once():
    source = ("from repro.observe import hostclock\n"
              "t = hostclock.wall_now()\n")
    findings = lint_source(source, path="repro/storage/s3.py",
                           select=["SIM009"])
    # One finding for the import, one for the (whole) call chain.
    assert len(findings) == 2


def test_src_layout_paths_canonicalised():
    # The same fixture must activate scoped rules whether linted as
    # repro/... or src/repro/... (checkout layout).
    source = (FIXTURES / "sim003_bad.py").read_text()
    findings = lint_source(source, path="src/repro/workflow/scheduler.py",
                           select=["SIM003"])
    assert len(findings) == 2


def test_severities():
    assert RULES["SIM001"].severity is Severity.ERROR
    assert RULES["SIM004"].severity is Severity.WARNING
    assert RULES["SIM007"].severity is Severity.WARNING


def test_finding_format_and_dict():
    stem, path, _ = CASES["SIM006"]
    finding = _lint_fixture(stem, "bad", path, "SIM006")[0]
    text = finding.format()
    assert "SIM006" in text and path in text
    d = finding.to_dict()
    assert d["rule"] == "SIM006"
    assert d["path"] == path
    assert d["severity"] == "error"
