"""End-to-end property tests: random workflows on every storage system.

These close the loop on the simulator's global invariants: any valid
workflow, on any storage system and cluster size, must (a) complete
every task exactly once, (b) never violate the write-once namespace
(enforced at runtime — a violation raises), (c) respect basic physics:
makespan at least the critical path and at least the slot-limited
bound, and (d) be priced consistently across the two billing models.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import critical_path_seconds, makespan_lower_bound
from repro.apps import build_synthetic
from repro.experiments import ExperimentConfig, run_experiment

SYSTEMS = ["local", "s3", "nfs", "glusterfs-nufa",
           "glusterfs-distribute", "pvfs", "p2p"]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=6),      # storage index
    st.integers(min_value=1, max_value=4),      # node count (1..4)
    st.integers(min_value=5, max_value=35),     # task count
    st.integers(min_value=0, max_value=10_000), # workflow seed
)
def test_property_any_workflow_completes_consistently(storage_idx, nodes,
                                                      n_tasks, seed):
    storage = SYSTEMS[storage_idx]
    cfg = ExperimentConfig("synthetic", storage, nodes)
    if not cfg.is_valid()[0]:
        nodes = 2 if storage != "local" else 1
        cfg = ExperimentConfig("synthetic", storage, nodes)
    wf = build_synthetic(n_tasks=n_tasks, width=6, cpu_seconds=3.0,
                         seed=seed)
    result = run_experiment(cfg, workflow=wf)

    # (a) every task ran exactly once.
    assert result.run.n_jobs == n_tasks
    assert len({r.task_id for r in result.run.records}) == n_tasks

    # (c) physics: the makespan respects the classic lower bounds.
    bound = makespan_lower_bound(wf, nodes * 8)
    assert result.makespan >= bound * 0.999
    assert result.makespan >= critical_path_seconds(wf) * 0.999

    # (d) billing consistency.
    assert result.cost.per_second_total <= result.cost.per_hour_total + 1e-9
    assert result.cost.per_hour_total > 0

    # Task records are internally consistent.
    for r in result.run.records:
        assert r.end_time >= r.start_time >= r.submit_time
        assert r.cpu_seconds >= 0 and r.io_seconds >= 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000),
       st.floats(min_value=0.05, max_value=0.3))
def test_property_retries_preserve_invariants(seed, failure_rate):
    """Under random transient failures, the workflow still completes
    with every file produced exactly once (namespace would raise on
    any double-write)."""
    wf = build_synthetic(n_tasks=20, width=5, cpu_seconds=2.0, seed=seed)
    result = run_experiment(
        ExperimentConfig("synthetic", "glusterfs-nufa", 2,
                         task_failure_rate=failure_rate, retries=25,
                         seed=seed),
        workflow=wf)
    succeeded = [r for r in result.run.records if not r.failed]
    assert len(succeeded) == 20
    assert len({r.task_id for r in succeeded}) == 20
