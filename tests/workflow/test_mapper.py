"""Unit tests for the Pegasus mapper and executable plans."""

import pytest

from repro.cloud import MB, EC2Cloud
from repro.simcore import Environment
from repro.storage import LocalDiskStorage, S3Storage
from repro.storage.files import FileState
from repro.workflow import PegasusMapper, Task, Workflow


def build(storage_kind="local", n=1):
    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", n)
    fs = S3Storage(env, cloud) if storage_kind == "s3" \
        else LocalDiskStorage(env)
    fs.deploy(workers)
    return env, fs


def diamond():
    wf = Workflow("d")
    wf.add_file("in", 10 * MB, is_input=True)
    wf.add_file("m1", MB)
    wf.add_file("m2", MB)
    wf.add_file("out", MB)
    wf.add_task(Task("split", "s", 1.0, inputs=["in"],
                     outputs=["m1", "m2"]))
    wf.add_task(Task("w1", "w", 1.0, inputs=["m1"], outputs=["out"]))
    wf.add_task(Task("w2", "w", 1.0, inputs=["m2"]))
    return wf


def test_plan_structure():
    env, fs = build()
    plan = PegasusMapper().plan(diamond(), fs)
    assert plan.n_jobs == 3
    assert plan.roots() == ["split"]
    assert plan.parents["w1"] == {"split"}
    assert plan.children["split"] == {"w1", "w2"}
    job = plan.jobs["split"]
    assert job.input_bytes() == 10 * MB
    assert job.output_bytes() == 2 * MB
    assert job.id == "split"


def test_plan_registers_files_with_storage():
    env, fs = build()
    PegasusMapper().plan(diamond(), fs)
    ns = fs.namespace
    assert ns.state("in") is FileState.AVAILABLE    # pre-staged
    assert ns.state("m1") is FileState.PENDING      # declared
    assert len(ns) == 4


def test_plan_validates_workflow():
    env, fs = build()
    wf = Workflow("bad")
    wf.add_file("orphan", 1.0)  # no producer, not an input
    wf.add_task(Task("t", "x", 1.0, inputs=["orphan"]))
    from repro.workflow import WorkflowValidationError
    with pytest.raises(WorkflowValidationError):
        PegasusMapper().plan(wf, fs)


def test_plan_requires_deployed_storage():
    env = Environment()
    fs = LocalDiskStorage(env)
    with pytest.raises(RuntimeError, match="before deploy"):
        PegasusMapper().plan(diamond(), fs)


def test_s3_wrapping_flag():
    env, fs = build("s3")
    plan = PegasusMapper().plan(diamond(), fs)
    assert all(j.s3_wrapped for j in plan.jobs.values())


def test_replanning_same_workflow_is_idempotent():
    env, fs = build()
    mapper = PegasusMapper()
    a = mapper.plan(diamond(), fs)
    b = mapper.plan(diamond(), fs)   # re-declares identical files: fine
    assert a.n_jobs == b.n_jobs
