"""Tests for horizontal task clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_montage, build_synthetic
from repro.workflow import Task, Workflow, cluster_horizontal


def fan_workflow(width=10):
    wf = Workflow("fan")
    wf.add_file("in", 1.0, is_input=True)
    for i in range(width):
        wf.add_file(f"o{i}", 1.0)
        wf.add_task(Task(f"t{i}", "leaf", 2.0, memory_bytes=10.0,
                         inputs=["in"], outputs=[f"o{i}"]))
    return wf


def test_factor_one_is_identity_shaped():
    wf = fan_workflow()
    cl = cluster_horizontal(wf, 1)
    assert cl.n_tasks == wf.n_tasks
    assert cl.n_files == wf.n_files
    assert cl.total_cpu_seconds() == wf.total_cpu_seconds()


def test_merging_preserves_work_and_files():
    wf = fan_workflow(10)
    cl = cluster_horizontal(wf, 4)
    assert cl.n_tasks == 3  # 4 + 4 + 2
    assert cl.total_cpu_seconds() == wf.total_cpu_seconds()
    assert set(cl.files) == set(wf.files)
    # Merged memory is the member max, not the sum.
    assert all(t.memory_bytes == 10.0 for t in cl.tasks.values())


def test_internal_files_not_cluster_inputs():
    """A chain clustered into one task must not depend on itself."""
    wf = Workflow("chain")
    wf.add_file("f0", 1.0, is_input=True)
    wf.add_file("f1", 1.0)
    wf.add_file("f2", 1.0)
    wf.add_task(Task("a", "step", 1.0, inputs=["f0"], outputs=["f1"]))
    wf.add_task(Task("b", "other", 1.0, inputs=["f1"], outputs=["f2"]))
    # Different levels & transformations -> never merged; sanity only.
    cl = cluster_horizontal(wf, 8)
    cl.validate()
    assert cl.n_tasks == 2


def test_selected_transformations_only():
    wf = build_montage(degrees=1.0)
    cl = cluster_horizontal(wf, 8, transformations=["mDiffFit"])
    counts = {}
    for t in cl.tasks.values():
        counts[t.transformation] = counts.get(t.transformation, 0) + 1
    orig_counts = {}
    for t in wf.tasks.values():
        orig_counts[t.transformation] = orig_counts.get(t.transformation, 0) + 1
    assert counts["mDiffFit"] < orig_counts["mDiffFit"]
    assert counts["mProjectPP"] == orig_counts["mProjectPP"]


def test_montage_clusters_validate():
    wf = build_montage(degrees=2.0)
    for factor in (2, 8, 64):
        cl = cluster_horizontal(wf, factor)
        cl.validate()
        assert cl.total_cpu_seconds() == pytest.approx(wf.total_cpu_seconds())
        assert cl.input_bytes() == wf.input_bytes()
        assert cl.output_bytes() == wf.output_bytes()


def test_invalid_factor():
    with pytest.raises(ValueError):
        cluster_horizontal(fan_workflow(), 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(5, 40), st.integers(1, 10), st.integers(0, 50))
def test_property_clustering_preserves_validity(n, factor, seed):
    wf = build_synthetic(n_tasks=n, width=6, seed=seed)
    cl = cluster_horizontal(wf, factor)
    cl.validate()
    assert cl.total_cpu_seconds() == pytest.approx(wf.total_cpu_seconds())
    # Dependencies respected: clustered topological order exists and
    # every original file still has exactly one producer or is input.
    order = cl.topological_order()
    assert len(order) == cl.n_tasks
