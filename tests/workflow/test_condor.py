"""Unit tests for the Condor pool and the locality-aware variant."""

import pytest

from repro.cloud import MB, EC2Cloud
from repro.simcore import Environment
from repro.storage import GlusterFSStorage, S3Storage
from repro.workflow import (
    CondorPool,
    DAGMan,
    LocalityAwarePool,
    PegasusMapper,
    Task,
    Workflow,
)


def setup(n_workers=2, pool_cls=CondorPool, storage_kind="s3"):
    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", n_workers)
    if storage_kind == "s3":
        storage = S3Storage(env, cloud)
    else:
        storage = GlusterFSStorage(env, layout="nufa")
    storage.deploy(workers)
    pool = pool_cls(env, workers, storage)
    return env, workers, storage, pool


def two_stage_workflow(width=8):
    """Stage A writes files; stage B reads them (locality matters)."""
    wf = Workflow("two-stage")
    for i in range(width):
        wf.add_file(f"a{i}.dat", 50 * MB)
        wf.add_file(f"b{i}.dat", MB)
        wf.add_task(Task(f"A{i}", "produce", 5.0, outputs=[f"a{i}.dat"]))
        wf.add_task(Task(f"B{i}", "consume", 5.0,
                         inputs=[f"a{i}.dat"], outputs=[f"b{i}.dat"]))
    return wf


def run_pool(env, pool, wf, storage):
    plan = PegasusMapper().plan(wf, storage)
    dagman = DAGMan(env, plan, pool)
    dagman.start()
    env.run(until=dagman.done)
    return dagman


def test_fifo_pool_runs_everything():
    env, workers, storage, pool = setup()
    dagman = run_pool(env, pool, two_stage_workflow(), storage)
    assert dagman.n_completed == 16
    assert len(pool.records) == 16


def test_pool_queue_depth_counts_idle_jobs():
    env, workers, storage, pool = setup(n_workers=1)
    wf = two_stage_workflow(width=32)  # 32 roots on 8 slots
    plan = PegasusMapper().plan(wf, storage)
    dagman = DAGMan(env, plan, pool)
    dagman.start()
    env.run(until=1.0)
    assert pool.queue_depth > 0
    env.run(until=dagman.done)
    assert pool.queue_depth == 0


def test_dispatch_latency_configurable():
    env, workers, storage, pool = setup(n_workers=1)
    pool.DISPATCH_LATENCY = 0.0
    wf = Workflow("single")
    wf.add_file("o", 0.0)
    wf.add_task(Task("t", "x", 3.0, outputs=["o"]))
    run_pool(env, pool, wf, storage)
    # No I/O, no dispatch cost: pure CPU time.
    assert env.now == pytest.approx(3.0, abs=0.2)


def test_locality_pool_prefers_cached_inputs():
    """With files cached on specific nodes, the aware pool routes
    consumers there, lifting S3 cache hits above the FIFO baseline."""

    def hits(pool_cls):
        env, workers, storage, pool = setup(n_workers=2,
                                            pool_cls=pool_cls)
        run_pool(env, pool, two_stage_workflow(width=16), storage)
        return storage.stats.cache_hits

    assert hits(LocalityAwarePool) >= hits(CondorPool)


def test_locality_pool_score_computation():
    env, workers, storage, pool = setup(n_workers=2,
                                        pool_cls=LocalityAwarePool)
    wf = two_stage_workflow(width=2)
    plan = PegasusMapper().plan(wf, storage)
    job = plan.jobs["B0"]
    # Nothing cached yet: score 0 on both nodes.
    assert pool._local_score(workers[0], job) == 0.0
    storage._cache[workers[0].name].add("a0.dat")
    assert pool._local_score(workers[0], job) == pytest.approx(1.0)
    assert pool._local_score(workers[1], job) == 0.0
    # A job with no inputs scores 0 (no preference).
    assert pool._local_score(workers[0], plan.jobs["A0"]) == 0.0


def test_locality_pool_with_gluster_ownership():
    env, workers, storage, pool = setup(n_workers=2,
                                        pool_cls=LocalityAwarePool,
                                        storage_kind="gluster")
    dagman = run_pool(env, pool, two_stage_workflow(width=8), storage)
    assert dagman.n_completed == 16


def test_completion_callback_receives_records():
    env, workers, storage, pool = setup()
    seen = []
    pool.set_completion_callback(lambda job, rec: seen.append(rec.task_id))
    wf = two_stage_workflow(width=2)
    plan = PegasusMapper().plan(wf, storage)
    dagman = DAGMan(env, plan, pool)  # overrides the callback
    dagman.start()
    env.run(until=dagman.done)
    assert dagman.n_completed == 4
