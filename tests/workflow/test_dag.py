"""Unit + property tests for abstract workflow DAGs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow import Task, Workflow, WorkflowValidationError


def diamond():
    """in -> a -> {f1, f2} -> b, c -> {g1, g2} -> d -> out"""
    wf = Workflow("diamond")
    wf.add_file("in", 100.0, is_input=True)
    wf.add_file("f1", 10.0)
    wf.add_file("f2", 10.0)
    wf.add_file("g1", 5.0)
    wf.add_file("g2", 5.0)
    wf.add_file("out", 1.0)
    wf.add_task(Task("a", "split", 1.0, inputs=["in"], outputs=["f1", "f2"]))
    wf.add_task(Task("b", "work", 2.0, inputs=["f1"], outputs=["g1"]))
    wf.add_task(Task("c", "work", 2.0, inputs=["f2"], outputs=["g2"]))
    wf.add_task(Task("d", "merge", 1.0, inputs=["g1", "g2"], outputs=["out"]))
    return wf


def test_diamond_structure():
    wf = diamond()
    wf.validate()
    assert wf.n_tasks == 4
    assert wf.n_files == 6
    assert wf.parents("a") == set()
    assert wf.parents("b") == {"a"}
    assert wf.parents("d") == {"b", "c"}
    assert wf.children("a") == {"b", "c"}
    assert wf.children("d") == set()
    assert wf.producer_of("f1") == "a"
    assert wf.producer_of("in") is None


def test_topological_order_respects_deps():
    wf = diamond()
    order = wf.topological_order()
    pos = {tid: i for i, tid in enumerate(order)}
    assert pos["a"] < pos["b"] < pos["d"]
    assert pos["a"] < pos["c"] < pos["d"]


def test_levels():
    wf = diamond()
    levels = wf.levels()
    assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}


def test_byte_accounting():
    wf = diamond()
    assert wf.input_bytes() == 100.0
    assert wf.output_bytes() == 1.0
    assert wf.intermediate_bytes() == 30.0
    assert wf.total_cpu_seconds() == 6.0


def test_undeclared_file_rejected():
    wf = Workflow("w")
    with pytest.raises(WorkflowValidationError, match="undeclared file"):
        wf.add_task(Task("t", "x", 1.0, inputs=["ghost"]))


def test_duplicate_task_rejected():
    wf = Workflow("w")
    wf.add_file("f", 1.0)
    wf.add_task(Task("t", "x", 1.0, outputs=["f"]))
    with pytest.raises(WorkflowValidationError, match="duplicate"):
        wf.add_task(Task("t", "x", 1.0))


def test_two_producers_rejected():
    wf = Workflow("w")
    wf.add_file("f", 1.0)
    wf.add_task(Task("t1", "x", 1.0, outputs=["f"]))
    with pytest.raises(WorkflowValidationError, match="produced by both"):
        wf.add_task(Task("t2", "x", 1.0, outputs=["f"]))


def test_writing_workflow_input_rejected():
    wf = Workflow("w")
    wf.add_file("in", 1.0, is_input=True)
    with pytest.raises(WorkflowValidationError, match="workflow input"):
        wf.add_task(Task("t", "x", 1.0, outputs=["in"]))


def test_orphan_input_rejected_by_validate():
    wf = Workflow("w")
    wf.add_file("f", 1.0)  # not an input, no producer
    wf.add_task(Task("t", "x", 1.0, inputs=["f"]))
    with pytest.raises(WorkflowValidationError, match="no producer"):
        wf.validate()


def test_cycle_detected():
    wf = Workflow("w")
    wf.add_file("a", 1.0)
    wf.add_file("b", 1.0)
    wf.add_task(Task("t1", "x", 1.0, inputs=["b"], outputs=["a"]))
    wf.add_task(Task("t2", "x", 1.0, inputs=["a"], outputs=["b"]))
    with pytest.raises(WorkflowValidationError, match="cycle"):
        wf.validate()


def test_control_edges():
    wf = Workflow("w")
    wf.add_file("f1", 1.0)
    wf.add_file("f2", 1.0)
    wf.add_task(Task("t1", "x", 1.0, outputs=["f1"]))
    wf.add_task(Task("t2", "x", 1.0, outputs=["f2"]))
    wf.add_control_edge("t1", "t2")
    assert wf.parents("t2") == {"t1"}
    assert wf.children("t1") == {"t2"}
    with pytest.raises(WorkflowValidationError):
        wf.add_control_edge("t1", "ghost")


def test_file_redefinition_conflict():
    wf = Workflow("w")
    wf.add_file("f", 1.0)
    wf.add_file("f", 1.0)  # identical: fine
    with pytest.raises(WorkflowValidationError):
        wf.add_file("f", 2.0)


def test_task_validation():
    with pytest.raises(ValueError):
        Task("t", "x", -1.0)
    with pytest.raises(ValueError):
        Task("t", "x", 1.0, memory_bytes=-5)


def test_describe():
    wf = diamond()
    desc = wf.describe()
    assert "diamond" in desc and "4 tasks" in desc


# ------------------------------------------------------------- property

@settings(max_examples=50, deadline=None)
@given(st.integers(2, 40), st.integers(0, 1000))
def test_property_random_layered_dag_is_valid(n, seed):
    """Random layered DAGs validate and topo-sort consistently."""
    import random
    rng = random.Random(seed)
    wf = Workflow("rand")
    wf.add_file("in", 1.0, is_input=True)
    names = ["in"]
    for i in range(n):
        out = f"f{i}"
        wf.add_file(out, 1.0)
        k = rng.randint(1, min(3, len(names)))
        ins = rng.sample(names, k)
        wf.add_task(Task(f"t{i}", "x", 1.0, inputs=ins, outputs=[out]))
        names.append(out)
    wf.validate()
    order = wf.topological_order()
    assert len(order) == n
    pos = {tid: i for i, tid in enumerate(order)}
    for tid in wf.tasks:
        for p in wf.parents(tid):
            assert pos[p] < pos[tid]
    # levels are consistent with parents
    levels = wf.levels()
    for tid in wf.tasks:
        for p in wf.parents(tid):
            assert levels[p] < levels[tid]
