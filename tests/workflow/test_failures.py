"""Tests for transient-failure injection and DAGMan retries."""

import pytest

from repro.apps import build_synthetic
from repro.cloud import EC2Cloud
from repro.simcore import Environment
from repro.storage import LocalDiskStorage
from repro.workflow import (
    FailureInjector,
    PegasusWMS,
    Task,
    Workflow,
    WorkflowFailedError,
)
from repro.workflow.failures import NO_FAILURES


def setup(task_failure_rate=0.0, retries=3, seed=0):
    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", 1)
    fs = LocalDiskStorage(env)
    fs.deploy(workers)
    wms = PegasusWMS(env, workers, fs, seed=seed,
                     task_failure_rate=task_failure_rate,
                     retries=retries)
    return env, wms


def test_injector_validation():
    with pytest.raises(ValueError):
        FailureInjector(1.0)
    with pytest.raises(ValueError):
        FailureInjector(-0.1)
    assert not NO_FAILURES.should_fail("t", 1)


def test_injector_deterministic():
    a = FailureInjector(0.5, seed=3)
    b = FailureInjector(0.5, seed=3)
    pattern_a = [a.should_fail("t", i) for i in range(50)]
    pattern_b = [b.should_fail("t", i) for i in range(50)]
    assert pattern_a == pattern_b
    assert any(pattern_a) and not all(pattern_a)
    assert a.injected == sum(pattern_a)


def test_no_failures_identical_to_baseline():
    _, wms0 = setup(task_failure_rate=0.0)
    _, wms1 = setup(task_failure_rate=0.0)
    wf = build_synthetic(20, width=5, seed=1)
    assert wms0.execute(wf).makespan == wms1.execute(
        build_synthetic(20, width=5, seed=1)).makespan


def test_retries_mask_transient_failures():
    env, wms = setup(task_failure_rate=0.15, retries=5, seed=7)
    wf = build_synthetic(40, width=8, seed=2)
    run = wms.execute(wf)
    # All tasks eventually completed exactly once...
    completed = [r for r in run.records if not r.failed]
    assert len(completed) == 40
    # ...and some attempts failed along the way.
    failed = [r for r in run.records if r.failed]
    assert len(failed) > 0
    assert all(r.attempt >= 1 for r in failed)


def test_failures_inflate_makespan():
    wf_a = build_synthetic(40, width=8, seed=2)
    wf_b = build_synthetic(40, width=8, seed=2)
    _, clean_wms = setup(task_failure_rate=0.0)
    _, flaky_wms = setup(task_failure_rate=0.2, retries=10, seed=5)
    clean = clean_wms.execute(wf_a)
    flaky = flaky_wms.execute(wf_b)
    assert flaky.makespan > clean.makespan


def test_retry_exhaustion_fails_the_workflow():
    # rate ~0.97: a task will almost surely fail 1+retries times.
    env, wms = setup(task_failure_rate=0.97, retries=1, seed=1)
    wf = Workflow("tiny")
    wf.add_file("o", 1.0)
    wf.add_task(Task("only", "x", 1.0, outputs=["o"]))
    with pytest.raises(WorkflowFailedError, match="retry limit"):
        wms.execute(wf)


def test_failed_attempt_produces_no_outputs():
    """The write-once namespace stays clean across retries: the file is
    written exactly once, by the successful attempt."""
    env, wms = setup(task_failure_rate=0.6, retries=20, seed=11)
    wf = build_synthetic(15, width=5, seed=3)
    run = wms.execute(wf)
    produced = {}
    for r in run.records:
        if not r.failed:
            produced[r.task_id] = produced.get(r.task_id, 0) + 1
    assert all(v == 1 for v in produced.values())
    assert len(produced) == 15


def test_retries_zero_means_no_second_chances():
    env, wms = setup(task_failure_rate=0.4, retries=0, seed=2)
    wf = build_synthetic(30, width=6, seed=4)
    with pytest.raises(WorkflowFailedError):
        wms.execute(wf)


def test_should_fail_is_memoized_per_attempt():
    """Asking twice about the same (task, attempt) must give the same
    answer and count the injection only once — DAGMan and diagnostics
    may both query the injector."""
    inj = FailureInjector(0.5, seed=3)
    first = [inj.should_fail("t", i) for i in range(50)]
    count_after_first = inj.injected
    second = [inj.should_fail("t", i) for i in range(50)]
    assert first == second
    assert inj.injected == count_after_first == sum(first)


def test_memoized_queries_do_not_disturb_the_stream():
    """Re-querying old attempts must not shift later draws."""
    a = FailureInjector(0.4, seed=9)
    b = FailureInjector(0.4, seed=9)
    pattern_a = []
    for i in range(30):
        pattern_a.append(a.should_fail("t", i))
        a.should_fail("t", 0)  # noisy re-query interleaved
    pattern_b = [b.should_fail("t", i) for i in range(30)]
    assert pattern_a == pattern_b


def test_retry_exhaustion_surfaces_through_dagman_done():
    """The failure arrives via DAGMan's done event, and the engine is
    fully drained afterwards — no orphaned slot processes or stuck
    queue getters keep the simulation alive."""
    from repro.workflow import CondorPool, DAGMan, PegasusMapper

    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", 1)
    fs = LocalDiskStorage(env)
    fs.deploy(workers)
    wf = Workflow("tiny")
    wf.add_file("o", 1.0)
    wf.add_task(Task("only", "x", 1.0, outputs=["o"]))
    plan = PegasusMapper().plan(wf, fs)
    pool = CondorPool(env, workers, fs,
                      failure_injector=FailureInjector(0.97, seed=1))
    dagman = DAGMan(env, plan, pool, retries=1)
    dagman.start()
    with pytest.raises(WorkflowFailedError, match="retry limit"):
        env.run(until=dagman.done)
    env.run()  # drains without deadlock or leftover failed events
    assert dagman.done.triggered


def test_write_once_preserved_across_reexecuted_attempts():
    """A task that fails after DAGMan already saw earlier failures
    still writes each output exactly once (namespace transitions
    PENDING -> WRITING -> AVAILABLE exactly one time per file)."""
    from repro.storage.files import FileState

    env, wms = setup(task_failure_rate=0.5, retries=30, seed=13)
    wf = build_synthetic(20, width=5, seed=6)
    run = wms.execute(wf)
    assert len({r.task_id for r in run.records if not r.failed}) == 20
    ns = wms.storage.namespace
    for name in wf.files:
        assert ns.state(name) is FileState.AVAILABLE


def test_dagman_rejects_negative_retries():
    from repro.workflow import CondorPool, DAGMan, PegasusMapper
    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", 1)
    fs = LocalDiskStorage(env)
    fs.deploy(workers)
    plan = PegasusMapper().plan(build_synthetic(3, seed=0), fs)
    pool = CondorPool(env, workers, fs)
    with pytest.raises(ValueError):
        DAGMan(env, plan, pool, retries=-1)
