"""Integration tests: mapper + DAGMan + Condor + executor + storage."""

import pytest

from repro.cloud import GB, MB, EC2Cloud
from repro.simcore import Environment, TraceCollector
from repro.storage import (
    GlusterFSStorage,
    LocalDiskStorage,
    NFSStorage,
    S3Storage,
)
from repro.workflow import (
    DAGMan,
    CondorPool,
    JobTooLargeError,
    PegasusMapper,
    PegasusWMS,
    Task,
    Workflow,
)


def build_env(n_workers=1, storage_name="local"):
    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", n_workers)
    if storage_name == "local":
        fs = LocalDiskStorage(env)
    elif storage_name == "s3":
        fs = S3Storage(env, cloud)
    elif storage_name == "nfs":
        fs = NFSStorage(env, cloud.launch("m1.xlarge", name="nfs-server"))
    elif storage_name == "gluster":
        fs = GlusterFSStorage(env, layout="nufa")
    else:
        raise ValueError(storage_name)
    fs.deploy(workers)
    return env, cloud, workers, fs


def chain_workflow(n=3, size=MB):
    wf = Workflow("chain")
    wf.add_file("f0", size, is_input=True)
    prev = "f0"
    for i in range(n):
        out = f"f{i + 1}"
        wf.add_file(out, size)
        wf.add_task(Task(f"t{i}", "step", 1.0, inputs=[prev], outputs=[out]))
        prev = out
    return wf


def fan_workflow(width=16, cpu=2.0, size=MB, memory=0.0):
    wf = Workflow("fan")
    wf.add_file("in", size, is_input=True)
    for i in range(width):
        wf.add_file(f"o{i}", size)
        wf.add_task(Task(f"t{i}", "leaf", cpu, memory_bytes=memory,
                         inputs=["in"], outputs=[f"o{i}"]))
    return wf


def test_chain_executes_in_order():
    env, cloud, workers, fs = build_env()
    wms = PegasusWMS(env, workers, fs)
    run = wms.execute(chain_workflow(5))
    assert run.n_jobs == 5
    # Serial chain: completions strictly ordered.
    ends = sorted((r.end_time, r.task_id) for r in run.records)
    assert [t for _, t in ends] == [f"t{i}" for i in range(5)]
    assert run.makespan > 5.0  # at least the CPU time


def test_fan_uses_all_slots():
    env, cloud, workers, fs = build_env()
    wms = PegasusWMS(env, workers, fs, dispatch_latency=0.0)
    run = wms.execute(fan_workflow(width=16, cpu=5.0, size=0.0))
    # 16 x 5 s CPU-only tasks on 8 slots: two waves of ~5 s.
    assert run.makespan == pytest.approx(10.0, rel=0.05)


def test_memory_gating_limits_concurrency():
    env, cloud, workers, fs = build_env()
    wms = PegasusWMS(env, workers, fs, dispatch_latency=0.0)
    # 3 GB tasks on a 7 GB node: only 2 at once despite 8 slots.
    run = wms.execute(fan_workflow(width=4, cpu=5.0, size=0.0,
                                   memory=3 * GB))
    assert run.makespan == pytest.approx(10.0, rel=0.05)


def test_oversized_task_fails_loudly():
    env, cloud, workers, fs = build_env()
    wms = PegasusWMS(env, workers, fs)
    wf = fan_workflow(width=1, cpu=1.0, size=0.0, memory=16 * GB)
    with pytest.raises(JobTooLargeError):
        wms.execute(wf)


def test_multi_node_spreads_jobs():
    env, cloud, workers, fs = build_env(n_workers=4, storage_name="gluster")
    wms = PegasusWMS(env, workers, fs, dispatch_latency=0.0)
    run = wms.execute(fan_workflow(width=64, cpu=3.0))
    counts = run.per_node_job_counts()
    assert len(counts) == 4
    assert sum(counts.values()) == 64
    # FIFO over 32 slots should be roughly balanced.
    assert all(8 <= c <= 24 for c in counts.values())


def test_s3_jobs_are_wrapped():
    env, cloud, workers, fs = build_env(storage_name="s3")
    mapper = PegasusMapper()
    plan = mapper.plan(chain_workflow(2), fs)
    assert all(j.s3_wrapped for j in plan.jobs.values())
    assert plan.n_jobs == 2


def test_posix_jobs_not_wrapped():
    env, cloud, workers, fs = build_env(storage_name="nfs")
    plan = PegasusMapper().plan(chain_workflow(2), fs)
    assert not any(j.s3_wrapped for j in plan.jobs.values())


def test_run_record_accounting():
    env, cloud, workers, fs = build_env()
    wms = PegasusWMS(env, workers, fs)
    run = wms.execute(chain_workflow(3, size=10 * MB))
    for r in run.records:
        assert r.end_time > r.start_time >= r.submit_time
        assert r.bytes_read == 10 * MB
        assert r.bytes_written == 10 * MB
        assert r.cpu_seconds == pytest.approx(1.0)
        assert r.read_seconds > 0 and r.write_seconds > 0
    assert run.total_cpu_seconds() == pytest.approx(3.0)
    assert 0 < run.io_fraction() < 1


def test_empty_workflow_completes_immediately():
    env, cloud, workers, fs = build_env()
    wms = PegasusWMS(env, workers, fs)
    run = wms.execute(Workflow("empty"))
    assert run.makespan == 0.0
    assert run.n_jobs == 0


def test_dagman_progress_tracking():
    env, cloud, workers, fs = build_env()
    plan = PegasusMapper().plan(chain_workflow(4), fs)
    pool = CondorPool(env, workers, fs)
    dagman = DAGMan(env, plan, pool)
    assert dagman.progress == 0.0
    dagman.start()
    env.run(until=dagman.done)
    assert dagman.progress == 1.0
    assert dagman.n_completed == 4


def test_cpu_jitter_reproducible():
    def one(seed):
        env, cloud, workers, fs = build_env()
        wms = PegasusWMS(env, workers, fs, seed=seed, cpu_jitter_sigma=0.2)
        return wms.execute(fan_workflow(width=8, cpu=10.0)).makespan

    assert one(1) == one(1)
    assert one(1) != one(2)


def test_deterministic_without_jitter():
    def one():
        env, cloud, workers, fs = build_env(n_workers=2, storage_name="gluster")
        wms = PegasusWMS(env, workers, fs)
        return wms.execute(fan_workflow(width=32, cpu=2.0)).makespan

    assert one() == one()


def test_trace_records_task_lifecycle():
    env = Environment()
    trace = TraceCollector()
    cloud = EC2Cloud(env, trace=trace)
    workers = cloud.launch_many("c1.xlarge", 1)
    fs = LocalDiskStorage(env, trace=trace)
    fs.deploy(workers)
    wms = PegasusWMS(env, workers, fs, trace=trace)
    wms.execute(chain_workflow(2))
    assert trace.count("task", "start") == 2
    assert trace.count("task", "end") == 2
    assert trace.count("dagman", "complete") == 2


def test_bad_scheduler_name():
    env, cloud, workers, fs = build_env()
    with pytest.raises(ValueError, match="scheduler"):
        PegasusWMS(env, workers, fs, scheduler="random")


def test_write_once_enforced_end_to_end():
    """A malformed 'workflow' that writes a file twice is caught at
    plan time (two producers)."""
    from repro.workflow import WorkflowValidationError
    wf = Workflow("bad")
    wf.add_file("f", 1.0)
    wf.add_task(Task("a", "x", 1.0, outputs=["f"]))
    with pytest.raises(WorkflowValidationError):
        wf.add_task(Task("b", "x", 1.0, outputs=["f"]))
