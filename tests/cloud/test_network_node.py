"""Unit tests for the cluster network fabric and VM instances."""

import pytest

from repro.cloud import MB, GB, ClusterNetwork, VMInstance, get_instance_type
from repro.simcore import Environment


def test_attach_and_lookup():
    env = Environment()
    net = ClusterNetwork(env)
    ep = net.attach("n0", 125 * MB)
    assert net.endpoint("n0") is ep
    assert len(net.endpoints) == 1


def test_duplicate_attach_rejected():
    env = Environment()
    net = ClusterNetwork(env)
    net.attach("n0", 125 * MB)
    with pytest.raises(ValueError):
        net.attach("n0", 125 * MB)


def test_transfer_bandwidth():
    env = Environment()
    net = ClusterNetwork(env)
    a = net.attach("a", 100 * MB)
    b = net.attach("b", 100 * MB)

    def proc():
        t0 = env.now
        yield from net.transfer(a, b, 100 * MB)
        return env.now - t0

    elapsed = env.run(until=env.process(proc()))
    assert elapsed == pytest.approx(1.0, rel=0.01)
    assert net.bytes_transferred == 100 * MB


def test_loopback_is_free():
    env = Environment()
    net = ClusterNetwork(env)
    a = net.attach("a", 100 * MB)

    def proc():
        t0 = env.now
        yield from net.transfer(a, a, 1000 * MB)
        return env.now - t0

    assert env.run(until=env.process(proc())) == 0.0


def test_full_duplex_nic():
    """Simultaneous send and receive on one NIC don't contend."""
    env = Environment()
    net = ClusterNetwork(env)
    a = net.attach("a", 100 * MB)
    b = net.attach("b", 100 * MB)
    finish = {}

    def send(env):
        yield from net.transfer(a, b, 100 * MB)
        finish["a->b"] = env.now

    def recv(env):
        yield from net.transfer(b, a, 100 * MB)
        finish["b->a"] = env.now

    env.process(send(env))
    env.process(recv(env))
    env.run()
    assert finish["a->b"] == pytest.approx(1.0, rel=0.01)
    assert finish["b->a"] == pytest.approx(1.0, rel=0.01)


def test_server_tx_is_shared_by_clients():
    """Four clients pulling from one server share its transmit link."""
    env = Environment()
    net = ClusterNetwork(env)
    server = net.attach("server", 100 * MB)
    clients = [net.attach(f"c{i}", 100 * MB) for i in range(4)]
    finish = []

    def pull(env, c):
        yield from net.transfer(server, c, 100 * MB)
        finish.append(env.now)

    for c in clients:
        env.process(pull(env, c))
    env.run()
    assert all(t == pytest.approx(4.0, rel=0.01) for t in finish)


def test_transfer_event_wrapper():
    env = Environment()
    net = ClusterNetwork(env)
    a = net.attach("a", 100 * MB)
    b = net.attach("b", 100 * MB)
    ev = net.transfer_event(a, b, 50 * MB)
    env.run(until=ev)
    assert env.now == pytest.approx(0.5, rel=0.02)


# ------------------------------------------------------------ VMInstance

def test_vm_resources_match_type():
    env = Environment()
    net = ClusterNetwork(env)
    itype = get_instance_type("c1.xlarge")
    vm = VMInstance(env, itype, net, name="w0")
    assert vm.cores.capacity == 8
    assert vm.memory.capacity == pytest.approx(7.0 * GB)
    assert vm.slots_free == 8
    assert vm.memory_free == pytest.approx(7.0 * GB)
    assert vm.is_running
    # RAID0 of the 4 ephemeral disks.
    assert vm.disk.profile.first_write_bw == pytest.approx(80 * MB)


def test_vm_terminate_detaches_nic():
    env = Environment()
    net = ClusterNetwork(env)
    vm = VMInstance(env, get_instance_type("m1.small"), net, name="x")
    vm.terminate()
    assert not vm.is_running
    with pytest.raises(KeyError):
        net.endpoint("x")
    vm.terminate()  # idempotent


def test_unknown_instance_type():
    with pytest.raises(KeyError, match="unknown instance type"):
        get_instance_type("z9.mega")


def test_catalog_paper_types():
    c1 = get_instance_type("c1.xlarge")
    m1 = get_instance_type("m1.xlarge")
    m2 = get_instance_type("m2.4xlarge")
    assert (c1.cores, c1.memory_gb, c1.ephemeral_disks) == (8, 7.0, 4)
    assert c1.price_per_hour == 0.68
    assert m1.price_per_hour == 0.68   # NFS extra node = $0.68/workflow
    assert m1.memory_gb == 16.0
    assert (m2.cores, m2.memory_gb, m2.price_per_hour) == (8, 64.0, 2.40)
