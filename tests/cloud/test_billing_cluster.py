"""Unit tests for billing meters, the EC2 facade, and provisioning."""

import pytest

from repro.cloud import BillingMeter, ContextBroker, EC2Cloud, get_instance_type
from repro.simcore import Environment


C1 = get_instance_type("c1.xlarge")
M1 = get_instance_type("m1.xlarge")


def test_partial_hour_rounds_up():
    m = BillingMeter()
    m.launch("a", C1, at=0.0)
    m.terminate("a", at=1800.0)  # half an hour
    cost = m.resource_cost()
    assert cost.per_hour == pytest.approx(0.68)
    assert cost.per_second == pytest.approx(0.68 * 0.5)
    assert cost.billed_hours == 1


def test_exact_hour_not_overbilled():
    m = BillingMeter()
    m.launch("a", C1, at=0.0)
    m.terminate("a", at=3600.0)
    cost = m.resource_cost()
    assert cost.per_hour == pytest.approx(0.68)
    assert cost.per_second == pytest.approx(0.68)


def test_just_over_hour_bills_two():
    m = BillingMeter()
    m.launch("a", C1, at=0.0)
    m.terminate("a", at=3601.0)
    assert m.resource_cost().billed_hours == 2


def test_zero_length_bills_one_hour():
    m = BillingMeter()
    m.launch("a", C1, at=0.0)
    m.terminate("a", at=0.0)
    assert m.resource_cost().per_hour == pytest.approx(0.68)


def test_multiple_instances_and_types():
    m = BillingMeter()
    for i in range(4):
        m.launch(f"w{i}", C1, at=0.0)
    m.launch("nfs", M1, at=0.0)
    m.terminate_all(at=1000.0)
    cost = m.resource_cost()
    assert cost.per_hour == pytest.approx(4 * 0.68 + 0.68)
    assert cost.by_type["c1.xlarge"] == pytest.approx(4 * 0.68)
    assert cost.by_type["m1.xlarge"] == pytest.approx(0.68)


def test_per_second_never_exceeds_per_hour():
    m = BillingMeter()
    m.launch("a", C1, at=0.0)
    m.terminate("a", at=5000.0)
    cost = m.resource_cost()
    assert cost.per_second <= cost.per_hour


def test_open_interval_needs_at():
    m = BillingMeter()
    m.launch("a", C1, at=0.0)
    with pytest.raises(ValueError):
        m.resource_cost()
    assert m.resource_cost(at=100.0).per_hour == pytest.approx(0.68)


def test_double_launch_and_bad_terminate():
    m = BillingMeter()
    m.launch("a", C1, at=0.0)
    with pytest.raises(ValueError):
        m.launch("a", C1, at=1.0)
    with pytest.raises(ValueError):
        m.terminate("b", at=1.0)
    with pytest.raises(ValueError):
        m.terminate("a", at=-1.0)


# ------------------------------------------------------------------ EC2

def test_launch_and_terminate_instances():
    env = Environment()
    cloud = EC2Cloud(env)
    vms = cloud.launch_many("c1.xlarge", 3)
    assert len(vms) == 3
    assert [v.name for v in vms] == ["worker-0", "worker-1", "worker-2"]
    env.run(until=100.0)
    cloud.terminate_all()
    cost = cloud.billing.resource_cost()
    assert cost.per_hour == pytest.approx(3 * 0.68)


def test_launch_count_validation():
    env = Environment()
    cloud = EC2Cloud(env)
    with pytest.raises(ValueError):
        cloud.launch_many("c1.xlarge", 0)


def test_boot_delay_in_range():
    env = Environment()
    cloud = EC2Cloud(env, seed=3)
    vm = cloud.launch("c1.xlarge")
    env.run(until=env.process(cloud.boot(vm)))
    assert 70.0 <= env.now <= 90.0


# ------------------------------------------------------------- Broker

def test_provision_workers_only():
    env = Environment()
    cloud = EC2Cloud(env)
    broker = ContextBroker(cloud)
    cluster = broker.provision_now(4)
    assert len(cluster) == 4
    assert cluster.total_slots == 32
    assert cluster.service_nodes == []
    assert len(cluster.all_nodes) == 4


def test_provision_with_nfs_server():
    env = Environment()
    cloud = EC2Cloud(env)
    broker = ContextBroker(cloud)
    cluster = broker.provision_now(2, service_type="m1.xlarge", n_service=1)
    assert len(cluster.service_nodes) == 1
    assert cluster.service_nodes[0].itype.name == "m1.xlarge"
    assert cluster.total_slots == 16  # service node adds no slots


def test_provision_with_boot_takes_time():
    env = Environment()
    cloud = EC2Cloud(env, seed=1)
    broker = ContextBroker(cloud)
    cluster = env.run(until=env.process(
        broker.provision(4, simulate_boot=True)))
    assert len(cluster) == 4
    assert 70.0 <= env.now <= 95.0 + broker.CONTEXTUALIZE_DELAY


def test_provision_validation():
    env = Environment()
    cloud = EC2Cloud(env)
    broker = ContextBroker(cloud)
    with pytest.raises(ValueError):
        broker.provision_now(0)
    with pytest.raises(ValueError):
        broker.provision_now(1, n_service=1)  # missing service_type
