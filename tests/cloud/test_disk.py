"""Unit tests for the ephemeral-disk model (paper §III.C)."""

import pytest

from repro.cloud import (
    EPHEMERAL_DISK,
    INITIALIZED_DISK,
    MB,
    BlockDevice,
    DiskProfile,
    make_node_disk,
    raid0,
)
from repro.simcore import Environment


def run(env, gen):
    return env.run(until=env.process(gen))


def test_first_write_is_slow():
    env = Environment()
    disk = BlockDevice(env, EPHEMERAL_DISK)

    def proc():
        t0 = env.now
        yield from disk.write("f", 100 * MB)
        return env.now - t0

    elapsed = run(env, proc())
    # 100 MB at 20 MB/s = 5 s (+ op latency).
    assert elapsed == pytest.approx(5.0, rel=0.01)


def test_rewrite_is_fast():
    env = Environment()
    disk = BlockDevice(env, EPHEMERAL_DISK)

    def proc():
        yield from disk.write("f", 100 * MB)
        t0 = env.now
        yield from disk.write("f", 100 * MB)
        return env.now - t0

    elapsed = run(env, proc())
    # 100 MB at 95 MB/s.
    assert elapsed == pytest.approx(100 / 95, rel=0.01)


def test_different_keys_each_pay_penalty():
    env = Environment()
    disk = BlockDevice(env, EPHEMERAL_DISK)

    def proc():
        yield from disk.write("a", 20 * MB)
        t0 = env.now
        yield from disk.write("b", 20 * MB)
        return env.now - t0

    elapsed = run(env, proc())
    assert elapsed == pytest.approx(1.0, rel=0.01)  # still first-write rate


def test_read_bandwidth():
    env = Environment()
    disk = BlockDevice(env, EPHEMERAL_DISK)

    def proc():
        t0 = env.now
        yield from disk.read(110 * MB)
        return env.now - t0

    assert run(env, proc()) == pytest.approx(1.0, rel=0.01)


def test_initialized_disk_has_no_penalty():
    env = Environment()
    disk = BlockDevice(env, INITIALIZED_DISK)

    def proc():
        t0 = env.now
        yield from disk.write("f", 95 * MB)
        return env.now - t0

    assert run(env, proc()) == pytest.approx(1.0, rel=0.01)


def test_raid0_matches_paper_measurements():
    """Paper: 4-disk RAID0 gives 80-100 MB/s first write, 350-400 MB/s
    subsequent writes, ~310 MB/s reads."""
    profile = raid0(EPHEMERAL_DISK, 4)
    assert 80 * MB <= profile.first_write_bw <= 100 * MB
    assert 350 * MB <= profile.rewrite_bw <= 400 * MB
    assert 290 * MB <= profile.read_bw <= 330 * MB


def test_raid0_single_disk_identity():
    assert raid0(EPHEMERAL_DISK, 1) is EPHEMERAL_DISK


def test_raid0_rejects_zero_disks():
    with pytest.raises(ValueError):
        raid0(EPHEMERAL_DISK, 0)


def test_zero_fill_50gb_takes_about_42_minutes():
    """Paper: initializing 50 GB takes ~42 minutes (at first-write speed
    of the RAID array)."""
    env = Environment()
    disk = make_node_disk(env, ndisks=4)

    def proc():
        t0 = env.now
        yield from disk.zero_fill(50_000 * MB)
        return env.now - t0

    elapsed = run(env, proc())
    minutes = elapsed / 60.0
    assert 35 <= minutes <= 50  # paper: "almost ... 42 minutes"


def test_concurrent_io_shares_device():
    env = Environment()
    disk = BlockDevice(env, DiskProfile(10 * MB, 10 * MB, 10 * MB, op_latency=0.0,
                                        contention_beta=0.0))
    finish = []

    def proc():
        yield from disk.read(10 * MB)
        finish.append(env.now)

    env.process(proc())
    env.process(proc())
    env.run()
    # Two 1-second reads sharing the device -> both at t=2.
    assert finish == [pytest.approx(2.0), pytest.approx(2.0)]


def test_counters():
    env = Environment()
    disk = BlockDevice(env, EPHEMERAL_DISK)

    def proc():
        yield from disk.write("f", 10 * MB)
        yield from disk.read(5 * MB)

    run(env, proc())
    assert disk.writes == 1 and disk.reads == 1
    assert disk.bytes_written == 10 * MB
    assert disk.bytes_read == 5 * MB


def test_forget_restores_first_write():
    env = Environment()
    disk = BlockDevice(env, EPHEMERAL_DISK)

    def proc():
        yield from disk.write("f", 20 * MB)
        disk.forget("f")
        t0 = env.now
        yield from disk.write("f", 20 * MB)
        return env.now - t0

    assert run(env, proc()) == pytest.approx(1.0, rel=0.01)
    assert disk.is_touched("f")


def test_profile_validation():
    with pytest.raises(ValueError):
        DiskProfile(first_write_bw=0, rewrite_bw=1, read_bw=1)
    with pytest.raises(ValueError):
        DiskProfile(first_write_bw=1, rewrite_bw=1, read_bw=1, op_latency=-1)


def test_negative_io_rejected():
    env = Environment()
    disk = BlockDevice(env, EPHEMERAL_DISK)

    def proc():
        yield from disk.read(-5)

    with pytest.raises(ValueError):
        run(env, proc())
