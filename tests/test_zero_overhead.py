"""Fault machinery is zero-overhead when disabled.

The golden values below were captured from the paper-grid cells
*before* the fault subsystem existed.  With every fault knob at its
default, the hot path must not create a single extra event, draw a
single random number, or reorder anything — so makespans and costs
must stay bit-identical, not merely close.  Any drift here means the
fault layer leaks into fault-free runs.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import NO_FAULTS, FaultSpec

# (app, storage, nodes) -> (makespan, cost/hour, cost/second); exact
# floats from the pre-fault-subsystem tree, seed 42 (the default).
GOLDEN = {
    ("montage", "local", 1): (3681.9506710520345, 1.36, 0.6954795711987176),
    ("montage", "nfs", 4): (5213.212831564874, 6.800000000000001,
                            4.923589896477937),
    ("montage", "s3", 8): (1242.0820811662009, 5.68265127934134,
                           2.1195753131035997),
    ("montage", "glusterfs-nufa", 2): (1795.4222443607955, 1.36,
                                       0.6782706256474117),
    ("epigenome", "nfs", 2): (2761.0296623150994, 2.04,
                              1.5645834753118897),
    ("epigenome", "pvfs", 4): (1662.7409629878625, 2.72,
                               1.2562931720352741),
    ("broadband", "glusterfs-distribute", 4): (2363.7090331598624, 2.72,
                                               1.785913491720785),
    ("broadband", "s3", 2): (3636.8691808679264, 2.7870737588029435,
                             1.4410021160197153),
}


@pytest.mark.parametrize(
    "cell", sorted(GOLDEN),
    ids=["{}-{}-{}".format(*c) for c in sorted(GOLDEN)])
def test_disabled_faults_are_bit_identical(cell):
    app, storage, nodes = cell
    result = run_experiment(ExperimentConfig(app, storage, nodes))
    golden = GOLDEN[cell]
    assert result.makespan == golden[0]
    assert result.cost.per_hour_total == golden[1]
    assert result.cost.per_second_total == golden[2]
    # The fault layer was never even instantiated.
    assert result.faults is None


def test_default_config_resolves_to_no_faults():
    cfg = ExperimentConfig("montage", "nfs", 2)
    assert cfg.effective_fault_spec() is None
    # An explicitly disabled spec is equivalent to none at all.
    cfg = ExperimentConfig("montage", "nfs", 2, fault_spec=NO_FAULTS)
    assert cfg.effective_fault_spec() is None


def test_scalar_shortcuts_merge_over_the_spec():
    base = FaultSpec(node_mtbf=100.0)
    cfg = ExperimentConfig("montage", "nfs", 2, fault_spec=base,
                           storage_error_rate=0.01)
    eff = cfg.effective_fault_spec()
    assert eff is not None
    assert eff.node_mtbf == 100.0
    assert eff.storage_error_rate == 0.01
