"""Tests for the §VI cost model."""

import pytest

from repro.cloud import BillingMeter, get_instance_type
from repro.cost import S3Fees, compute_cost
from repro.cost.pricing import S3_GET_PRICE, S3_PUT_PRICE
from repro.storage.base import StorageStats

C1 = get_instance_type("c1.xlarge")
M1 = get_instance_type("m1.xlarge")


def test_s3_request_fees_match_schedule():
    fees = S3Fees(put_requests=1000, get_requests=10000,
                  stored_gb=0.0, duration_seconds=0.0)
    # $0.01 per 1,000 PUTs + $0.01 per 10,000 GETs.
    assert fees.request_cost == pytest.approx(0.02)


def test_s3_storage_cost_negligible_for_paper_runs():
    """Paper: storage cost << $0.01 for the applications tested."""
    fees = S3Fees(put_requests=0, get_requests=0,
                  stored_gb=30.0, duration_seconds=3600.0)
    assert fees.storage_cost < 0.01


def test_montage_scale_s3_fee_about_28_cents():
    """Paper: Montage S3 surcharge ~ $0.28."""
    # Montage pushes/pulls ~23k files; the paper's measured mix.
    fees = S3Fees(put_requests=23_000, get_requests=50_000,
                  stored_gb=30.0, duration_seconds=3000.0)
    assert 0.2 <= fees.total <= 0.4


def test_compute_cost_s3_only_for_s3():
    meter = BillingMeter()
    meter.launch("w0", C1, at=0.0)
    meter.terminate("w0", at=1000.0)
    stats = StorageStats(get_requests=100, put_requests=100)
    c_s3 = compute_cost(meter, stats, "s3", makespan=1000.0, stored_gb=1.0)
    c_nfs = compute_cost(meter, stats, "nfs", makespan=1000.0)
    assert c_s3.s3_fees is not None
    assert c_nfs.s3_fees is None
    assert c_s3.per_hour_total > c_nfs.per_hour_total


def test_nfs_extra_node_is_68_cents():
    """Paper: the dedicated m1.xlarge adds $0.68 per workflow."""
    without = BillingMeter()
    with_nfs = BillingMeter()
    for meter in (without, with_nfs):
        for i in range(4):
            meter.launch(f"w{i}", C1, at=0.0)
    with_nfs.launch("nfs", M1, at=0.0)
    without.terminate_all(at=1800.0)
    with_nfs.terminate_all(at=1800.0)
    stats = StorageStats()
    base = compute_cost(without, stats, "glusterfs-nufa", makespan=1800.0)
    nfs = compute_cost(with_nfs, stats, "nfs", makespan=1800.0)
    assert nfs.per_hour_total - base.per_hour_total == pytest.approx(0.68)


def test_per_second_total_below_per_hour():
    meter = BillingMeter()
    meter.launch("w0", C1, at=0.0)
    meter.terminate("w0", at=600.0)
    cost = compute_cost(meter, StorageStats(), "local", makespan=600.0)
    assert cost.per_second_total < cost.per_hour_total


def test_fee_constants():
    assert S3_PUT_PRICE == pytest.approx(1e-5)
    assert S3_GET_PRICE == pytest.approx(1e-6)
