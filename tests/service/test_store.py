"""SQLite store adapter: schema versioning, idempotence, durability."""

import json
import os
import sqlite3
import threading

import pytest

from repro.service.store import MIGRATIONS, SCHEMA_VERSION, open_store


def test_fresh_store_is_at_current_schema(tmp_path):
    with open_store(str(tmp_path / "s.db")) as store:
        assert store.schema_version() == SCHEMA_VERSION


def test_reopening_is_idempotent(tmp_path):
    path = str(tmp_path / "s.db")
    with open_store(path) as store:
        store.put_result("d1", "montage/nfs@4", "{}")
    # A second open must not replay migrations or lose rows.
    with open_store(path) as store:
        assert store.schema_version() == SCHEMA_VERSION
        assert store.get_result("d1") == "{}"


def test_newer_database_is_refused(tmp_path):
    path = str(tmp_path / "s.db")
    open_store(path).close()
    conn = sqlite3.connect(path)
    conn.execute("UPDATE schema_info SET version = ?",
                 (SCHEMA_VERSION + 1,))
    conn.commit()
    conn.close()
    with pytest.raises(ValueError, match="newer than this code"):
        open_store(path)


def test_migration_list_is_append_only_and_ordered():
    versions = [v for v, _ in MIGRATIONS]
    assert versions == sorted(versions)
    assert versions[-1] == SCHEMA_VERSION


def test_wal_mode_on_disk(tmp_path):
    with open_store(str(tmp_path / "s.db")) as store:
        mode = store.query("PRAGMA journal_mode")[0][0]
        assert mode == "wal"


def test_put_result_is_idempotent():
    with open_store() as store:
        assert store.put_result("d1", "cell", '{"a":1}') is True
        # Same digest again: the racing writer loses quietly and the
        # first payload wins (they are byte-identical by determinism).
        assert store.put_result("d1", "cell", '{"a":1}') is False
        assert store.result_count() == 1
        assert store.has_result("d1")
        assert not store.has_result("d2")


def test_result_rows_listing():
    with open_store() as store:
        store.put_result("bbb", "cell-b", "{}")
        store.put_result("aaa", "cell-a", "{}")
        rows = store.result_rows()
        assert [r["digest"] for r in rows] == ["aaa", "bbb"]
        assert all("payload" not in r for r in rows)


def test_event_log_is_gapless_and_ordered():
    with open_store() as store:
        store.append_event(1, 1, '{"kind":"sweep_started"}')
        store.append_event(1, 2, '{"kind":"cell_started"}')
        store.append_event(2, 1, '{"kind":"sweep_started"}')
        # Replayed write (crash/retry) must not duplicate the row.
        store.append_event(1, 2, '{"kind":"cell_started"}')
        assert [seq for seq, _ in store.events_after(1)] == [1, 2]
        assert [seq for seq, _ in store.events_after(1, after_seq=1)] == [2]
        for _, line in store.events_after(1):
            json.loads(line)


def test_record_cell_upserts():
    with open_store() as store:
        store.record_cell(1, 0, "cell", None, cached=False, error="boom")
        store.record_cell(1, 0, "cell", "d1", cached=True)
        rows = store.cell_rows(1)
        assert len(rows) == 1
        assert rows[0]["digest"] == "d1"
        assert rows[0]["cached"] is True
        assert rows[0]["error"] is None


def test_concurrent_writers_never_hit_database_locked(tmp_path):
    # N threads hammering one store must serialize on the lock, not
    # race into sqlite3.OperationalError("database is locked").
    store = open_store(str(tmp_path / "s.db"))
    errors = []

    def writer(tid):
        try:
            for i in range(25):
                store.put_result(f"d-{tid}-{i}", "cell", "{}")
                store.append_event(tid, i + 1, '{"kind":"x"}')
        except Exception as exc:  # noqa: BLE001 - recording any failure
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,))
               for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert store.result_count() == 8 * 25
    store.close()


def test_sql_is_postgres_shaped():
    # The migration DDL stays portable: no SQLite-only column types.
    ddl = " ".join(stmt for _, stmts in MIGRATIONS for stmt in stmts)
    for sqlite_only in ("AUTOINCREMENT", "WITHOUT ROWID", "PRAGMA"):
        assert sqlite_only not in ddl.upper()
