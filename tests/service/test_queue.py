"""Lease/ack queue protocol: claims, heartbeats, crash recovery."""

import pytest

from repro.service.queue import JobQueue
from repro.service.store import open_store


class FakeClock:
    """Injectable wall clock so lease expiry needs no sleeping."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(clock):
    store = open_store()
    yield JobQueue(store, clock=clock)
    store.close()


def test_submit_lease_complete_lifecycle(queue):
    job_id = queue.submit("scenario", {"config": {"app": "montage"}},
                          n_cells=1)
    job = queue.lease("w1", lease_seconds=60.0)
    assert job is not None and job.id == job_id
    assert job.state == "running"
    assert job.lease_owner == "w1"
    assert job.attempts == 1
    # Queue drained: a second worker finds nothing.
    assert queue.lease("w2") is None
    queue.complete(job_id, n_done=1, n_cache_hits=1)
    done = queue.get(job_id)
    assert done.state == "done"
    assert done.lease_owner is None
    assert done.n_done == 1 and done.n_cache_hits == 1
    assert queue.counts() == {"queued": 0, "running": 0,
                              "done": 1, "failed": 0}


def test_lease_order_is_fifo(queue):
    first = queue.submit("scenario", {"n": 1})
    second = queue.submit("scenario", {"n": 2})
    assert queue.lease("w1").id == first
    assert queue.lease("w1").id == second


def test_unknown_kind_and_state_are_rejected(queue):
    with pytest.raises(ValueError, match="unknown job kind"):
        queue.submit("banana", {})
    with pytest.raises(ValueError, match="unknown job state"):
        queue.list_jobs(state="sideways")


def test_crashed_worker_job_is_releaved_not_lost(queue, clock):
    job_id = queue.submit("scenario", {})
    assert queue.lease("w1", lease_seconds=60.0).id == job_id
    # w1 dies silently; before the lease deadline nobody else may
    # claim the job...
    clock.advance(30.0)
    assert queue.lease("w2", lease_seconds=60.0) is None
    # ...after it, the job goes back to 'queued' and w2 picks it up
    # with the attempt count preserved.
    clock.advance(31.0)
    job = queue.lease("w2", lease_seconds=60.0)
    assert job is not None and job.id == job_id
    assert job.lease_owner == "w2"
    assert job.attempts == 2


def test_heartbeat_extends_the_lease(queue, clock):
    job_id = queue.submit("scenario", {})
    queue.lease("w1", lease_seconds=60.0)
    clock.advance(50.0)
    assert queue.heartbeat(job_id, "w1", lease_seconds=60.0) is True
    clock.advance(50.0)  # original deadline passed, renewed one not
    assert queue.lease("w2", lease_seconds=60.0) is None
    # A worker that lost its lease cannot heartbeat it back.
    clock.advance(61.0)
    assert queue.release_expired() == 1
    assert queue.heartbeat(job_id, "w1") is False


def test_repeatedly_dying_job_fails_after_max_attempts(queue, clock):
    job_id = queue.submit("scenario", {})
    for _ in range(queue.max_attempts):
        assert queue.lease("w1", lease_seconds=10.0) is not None
        clock.advance(11.0)
    # max_attempts leases burned: the next reclaim fails it for good.
    assert queue.lease("w1") is None
    job = queue.get(job_id)
    assert job.state == "failed"
    assert "lease expired" in job.error
    assert job.attempts == queue.max_attempts


def test_update_progress_touches_only_given_counters(queue):
    job_id = queue.submit("sweep", {}, n_cells=0)
    queue.lease("w1")
    queue.update_progress(job_id, n_cells=5)
    queue.update_progress(job_id, n_done=2)
    queue.update_progress(job_id)  # no-op
    job = queue.get(job_id)
    assert (job.n_cells, job.n_done, job.n_failed) == (5, 2, 0)


def test_payload_round_trips_through_the_row(queue):
    payload = {"configs": [{"app": "montage", "n_workers": 4}],
               "jobs": 2, "scale": "small"}
    job_id = queue.submit("sweep", payload)
    assert queue.get(job_id).payload == payload


def test_status_dict_is_json_shaped(queue):
    job_id = queue.submit("scenario", {})
    doc = queue.get(job_id).status_dict()
    assert doc["id"] == job_id
    assert doc["state"] == "queued"
    assert "payload" not in doc  # internal, not part of the status API
