"""Unit tests for the host-side resilience primitives.

Everything runs on fake clocks and recorded sleeps — no test here ever
sleeps for real, which is the injectability contract
:mod:`repro.service.resilience` promises.
"""

import sqlite3

import pytest

from repro.service.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    HostRetryPolicy,
    is_transient_sqlite_error,
)
from repro.telemetry.export import to_prometheus, validate_exposition
from repro.telemetry.metrics import MetricsRegistry


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# -- Deadline ---------------------------------------------------------------


def test_deadline_counts_down_and_expires():
    clock = FakeClock()
    d = Deadline(2.0, clock=clock)
    assert d.remaining() == pytest.approx(2.0)
    assert not d.expired
    clock.advance(1.5)
    assert d.remaining() == pytest.approx(0.5)
    assert d.clamp(10.0) == pytest.approx(0.5)
    assert d.clamp(0.1) == pytest.approx(0.1)
    clock.advance(1.0)
    assert d.expired
    assert d.clamp(0.1) == 0.0
    with pytest.raises(DeadlineExceeded, match="fetch"):
        d.check("fetch")


def test_deadline_none_is_unbounded():
    clock = FakeClock()
    d = Deadline(None, clock=clock)
    clock.advance(1e9)
    assert d.remaining() == float("inf")
    assert not d.expired
    d.check()  # never raises
    assert d.clamp(3.0) == 3.0


# -- transient-error classification -----------------------------------------


def test_transient_sqlite_classification():
    assert is_transient_sqlite_error(
        sqlite3.OperationalError("database is locked"))
    assert is_transient_sqlite_error(
        sqlite3.OperationalError("database table is locked (chaos)"))
    assert is_transient_sqlite_error(
        sqlite3.OperationalError("SQLITE_BUSY: somebody else is writing"))
    # Schema/syntax problems must propagate, not retry.
    assert not is_transient_sqlite_error(
        sqlite3.OperationalError("no such table: jobs"))
    assert not is_transient_sqlite_error(
        sqlite3.IntegrityError("UNIQUE constraint failed"))
    assert not is_transient_sqlite_error(ValueError("locked"))


# -- HostRetryPolicy --------------------------------------------------------


def _policy(**kwargs):
    kwargs.setdefault("sleep", lambda s: None)
    return HostRetryPolicy(**kwargs)


def test_retry_succeeds_after_transient_failures():
    sleeps = []
    policy = _policy(max_attempts=5, sleep=sleeps.append)
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise sqlite3.OperationalError("database is locked")
        return "ok"

    assert policy.call(flaky, op="t",
                       retry_on=(sqlite3.OperationalError,)) == "ok"
    assert calls["n"] == 3
    assert len(sleeps) == 2
    assert all(s >= 0.0 for s in sleeps)


def test_retry_exhaustion_reraises_and_counts():
    policy = _policy(max_attempts=3)

    def always():
        raise sqlite3.OperationalError("database is locked")

    with pytest.raises(sqlite3.OperationalError):
        policy.call(always, op="t", retry_on=(sqlite3.OperationalError,))
    metrics = to_prometheus(policy.metrics)
    assert 'service_retry_attempts_total{op="t"} 2' in metrics
    assert 'service_retry_exhausted_total{op="t"} 1' in metrics
    assert validate_exposition(metrics) == []


def test_retry_if_predicate_gates_retries():
    policy = _policy(max_attempts=5)
    calls = {"n": 0}

    def fatal():
        calls["n"] += 1
        raise sqlite3.OperationalError("no such table: jobs")

    with pytest.raises(sqlite3.OperationalError):
        policy.call(fatal, retry_on=(sqlite3.OperationalError,),
                    retry_if=is_transient_sqlite_error)
    assert calls["n"] == 1  # not retried: the predicate said fatal


def test_non_matching_exception_propagates_immediately():
    policy = _policy(max_attempts=5)
    calls = {"n": 0}

    def boom():
        calls["n"] += 1
        raise KeyError("nope")

    with pytest.raises(KeyError):
        policy.call(boom, retry_on=(ValueError,))
    assert calls["n"] == 1


def test_backoff_is_bounded_exponential_with_jitter():
    policy = _policy(max_attempts=10, base_delay=0.1, max_delay=0.4,
                     multiplier=2.0, jitter=0.5, seed=42)
    for attempt, nominal in enumerate([0.1, 0.2, 0.4, 0.4, 0.4]):
        d = policy.delay(attempt)
        assert 0.5 * nominal - 1e-9 <= d <= 1.5 * nominal + 1e-9, \
            (attempt, d)


def test_backoff_jitter_is_seeded_and_reproducible():
    a = _policy(seed=7, name="x")
    b = _policy(seed=7, name="x")
    c = _policy(seed=8, name="x")
    seq_a = [a.delay(i) for i in range(6)]
    seq_b = [b.delay(i) for i in range(6)]
    seq_c = [c.delay(i) for i in range(6)]
    assert seq_a == seq_b  # same (seed, name) -> same schedule
    assert seq_a != seq_c  # different seed -> different schedule


def test_retry_respects_deadline():
    clock = FakeClock()
    sleeps = []

    def sleeping(s):
        sleeps.append(s)
        clock.advance(max(s, 0.01))

    policy = _policy(max_attempts=100, base_delay=0.05, sleep=sleeping)
    deadline = Deadline(0.2, clock=clock)

    def always():
        clock.advance(0.01)
        raise sqlite3.OperationalError("database is locked")

    with pytest.raises(sqlite3.OperationalError):
        policy.call(always, retry_on=(sqlite3.OperationalError,),
                    deadline=deadline)
    # Far fewer than max_attempts: the deadline cut the loop short.
    assert 0 < len(sleeps) < 30
    assert deadline.expired


def test_retry_feeds_breaker_signals():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, clock=clock)
    policy = _policy(max_attempts=3)

    def always():
        raise sqlite3.OperationalError("database is locked")

    with pytest.raises(sqlite3.OperationalError):
        policy.call(always, retry_on=(sqlite3.OperationalError,),
                    breaker=breaker)
    assert breaker.state == OPEN  # 3 attempt failures tripped it
    policy.call(lambda: "ok", breaker=breaker)
    assert breaker.state == CLOSED


# -- CircuitBreaker ---------------------------------------------------------


def test_breaker_opens_after_threshold_and_cools_down():
    clock = FakeClock()
    registry = MetricsRegistry()
    breaker = CircuitBreaker(name="db", failure_threshold=3,
                             cooldown_seconds=5.0, clock=clock,
                             metrics=registry)
    assert breaker.state == CLOSED
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()  # shedding

    clock.advance(5.0)  # cooldown elapses
    assert breaker.state == HALF_OPEN
    assert breaker.allow()       # the single probe
    assert not breaker.allow()   # but only one
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()

    text = to_prometheus(registry)
    assert 'service_breaker_state{breaker="db"} 0' in text
    assert 'service_breaker_transitions_total{breaker="db",to="open"} 1' \
        in text
    assert validate_exposition(text) == []


def test_breaker_half_open_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0,
                             clock=clock)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(1.0)
    assert breaker.allow()  # probe
    breaker.record_failure()
    assert breaker.state == OPEN  # straight back open
    assert not breaker.allow()
    # ... and the next cooldown gives it another chance.
    clock.advance(1.0)
    assert breaker.state == HALF_OPEN


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
    for _ in range(2):
        breaker.record_failure()
    breaker.record_success()
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CLOSED  # streak never reached 3
