"""Health probes, load shedding, and breaker-guarded degradation.

Covers the graceful-degradation half of the chaos PR: ``/healthz`` /
``/readyz`` semantics, 503 + ``Retry-After`` shedding at the backlog
watermark, breaker-open request rejection, and the resilience metrics
landing in a valid ``/metrics`` exposition.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments import ExperimentConfig
from repro.service import (
    CellCache,
    CircuitBreaker,
    JobQueue,
    ServiceApp,
    ServiceWorker,
    open_store,
    serve,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.resilience import OPEN
from repro.telemetry.export import validate_exposition


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class Stack:
    """Service stack with resilience knobs exposed to the test."""

    def __init__(self, max_queue_depth=256, breaker_kwargs=None,
                 start_worker=True, request_deadline=30.0):
        self.store = open_store()
        self.queue = JobQueue(self.store)
        self.cache = CellCache(self.store)
        self.worker = ServiceWorker(self.store, self.queue, self.cache)
        # A custom breaker must register its gauge in the *shared*
        # registry, or it would never surface on /metrics.
        breaker = None
        if breaker_kwargs is not None:
            breaker = CircuitBreaker(metrics=self.store.metrics,
                                     **breaker_kwargs)
        self.app = ServiceApp(self.store, self.queue, self.cache,
                              breaker=breaker,
                              max_queue_depth=max_queue_depth,
                              request_deadline=request_deadline)
        self.breaker = self.app.breaker
        self.server = serve(self.app, port=0, quiet=True)
        host, port = self.server.server_address[:2]
        self.base_url = f"http://{host}:{port}"
        self.client = ServiceClient(self.base_url, timeout=30, retries=0)
        self._http = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self._http.start()
        if start_worker:
            self.worker.start()

    def close(self):
        self.worker.stop()
        self.server.shutdown()
        self.server.server_close()
        self.store.close()


def _get_raw(url):
    """(status, parsed body, headers) without client-side retries."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def _cell(nodes=1):
    return ExperimentConfig("montage", "nfs", nodes)


def test_healthz_and_readyz_when_healthy():
    stack = Stack()
    try:
        assert stack.client.healthz() == {"status": "ok"}
        doc = stack.client.readyz()
        assert doc["status"] == "ready"
        assert doc["breaker"] == "closed"
        assert doc["backlog"] == 0
        assert doc["reasons"] == []
    finally:
        stack.close()


def test_readyz_degrades_on_open_breaker_and_healthz_stays_ok():
    clock = FakeClock()
    stack = Stack(breaker_kwargs=dict(
        failure_threshold=1, cooldown_seconds=60.0, clock=clock))
    try:
        stack.breaker.record_failure()
        assert stack.breaker.state == OPEN
        status, doc, headers = _get_raw(stack.base_url + "/readyz")
        assert status == 503
        assert doc["status"] == "degraded"
        assert doc["breaker"] == "open"
        assert any("breaker" in r for r in doc["reasons"])
        assert headers["Retry-After"] is not None
        # Liveness is unaffected: the process still answers.
        assert stack.client.healthz() == {"status": "ok"}
        # ... and /metrics stays reachable for diagnosis.
        assert "service_breaker_state" in stack.client.metrics()
    finally:
        stack.close()


def test_open_breaker_sheds_guarded_routes_with_retry_after():
    clock = FakeClock()
    stack = Stack(breaker_kwargs=dict(
        failure_threshold=1, cooldown_seconds=60.0, clock=clock))
    try:
        doc = stack.client.submit([_cell()], scale="small")
        stack.client.wait(doc["job_id"], timeout=120)
        stack.breaker.record_failure()
        status, body, headers = _get_raw(
            stack.base_url + f"/api/v1/jobs/{doc['job_id']}")
        assert status == 503
        assert "breaker" in body["error"]
        assert headers["Retry-After"] is not None
        # Cooldown elapses -> half-open probe goes through and its
        # success closes the breaker again.
        clock.advance(60.0)
        assert stack.client.status(doc["job_id"])["state"] == "done"
        assert stack.breaker.state == "closed"
        metrics = stack.client.metrics()
        assert 'service_requests_shed_total{reason="breaker"} 1' in metrics
        assert validate_exposition(metrics) == []
    finally:
        stack.close()


def test_backlog_watermark_sheds_submissions():
    # Worker stopped and depth=1: the first job sits queued, the
    # second submission must shed with 503 + Retry-After instead of
    # growing the backlog without bound.
    stack = Stack(max_queue_depth=1, start_worker=False)
    try:
        stack.client.submit([_cell()], scale="small")
        with pytest.raises(ServiceError) as err:
            stack.client.submit([_cell(2)], scale="small")
        assert err.value.status == 503
        assert "backlog" in err.value.message
        # Nothing was enqueued for the shed request.
        assert len(stack.client.list_jobs()) == 1
        # readyz reports the backlog breach too.
        status, doc, _ = _get_raw(stack.base_url + "/readyz")
        assert status == 503 and doc["status"] == "degraded"
        assert any("backlog" in r for r in doc["reasons"])
        metrics = stack.client.metrics()
        assert 'service_requests_shed_total{reason="backlog"} 1' in metrics
    finally:
        stack.close()


def test_resilience_metrics_preseeded_in_exposition():
    # Before any fault fires, every resilience instrument must already
    # be present (zero-valued) so dashboards and alerts can bind.
    stack = Stack()
    try:
        metrics = stack.client.metrics()
        assert validate_exposition(metrics) == []
        for series in (
            'service_retry_attempts_total{op="store"} 0',
            'service_retry_exhausted_total{op="store"} 0',
            'service_breaker_state{breaker="store"} 0',
            'service_breaker_rejected_total{breaker="store"} 0',
            'service_requests_shed_total{reason="backlog"} 0',
            'service_worker_restarts_total{worker="worker-0"} 0',
        ):
            assert series in metrics, series
    finally:
        stack.close()


def test_request_deadline_sheds_with_503():
    # A zero deadline expires before any handler work happens; routes
    # that enforce it per-unit (result assembly) must answer 503, not
    # hang or 500.
    stack = Stack(request_deadline=0.0)
    try:
        doc = stack.client.submit([_cell()], scale="small")
        stack.client.wait(doc["job_id"], timeout=120)
        status, body, headers = _get_raw(
            stack.base_url + f"/api/v1/jobs/{doc['job_id']}/result")
        assert status == 503
        assert "deadline" in body["error"]
        assert headers["Retry-After"] is not None
        metrics = stack.client.metrics()
        assert 'service_requests_shed_total{reason="deadline"}' in metrics
    finally:
        stack.close()
