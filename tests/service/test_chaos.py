"""Chaos tests: the service survives injected host-side faults.

The oracle rests on the determinism contract: every cell is a pure
function of ``(ExperimentConfig, seed)`` and the result store is
content-addressed, so under *any* fault schedule every submitted job
must (a) reach a terminal state, (b) lose nothing, (c) never observe
a double execution (a re-run is byte-identical, so the cache answers
it), and (d) leave the store uncorrupted.

Three layers of tests:

* seeded property runs over the full stack (store + HTTP + worker
  faults at once),
* targeted worker-death recovery — the *real* lease-expiry backstop
  with no supervisor, then the supervisor's fast path,
* quarantine of poison jobs after ``max_attempts``, with crash
  bundles.
"""

import threading
import time

import pytest

from repro.experiments import ExperimentConfig
from repro.observe.flight import load_crash_bundles, validate_bundle
from repro.service import (
    CellCache,
    ChaosSpec,
    JobQueue,
    ServiceWorker,
    WorkerKilled,
    chaos_service,
    open_store,
)
from repro.lint.lockwatch import install_watcher, uninstall_watcher
from repro.service.chaos import ChaosSchedule, FlakySQLiteStore
from repro.service.client import TRANSIENT_STATUSES, ServiceError
from repro.telemetry.export import validate_exposition

TERMINAL = ("done", "failed")


@pytest.fixture(autouse=True)
def lock_witness():
    """Run every chaos seed as a runtime lock-order witness.

    All service locks are built through the lockwatch factory seam, so
    installing a watcher here turns each chaos scenario into a free
    concurrency audit: any lock-order inversion, excessive hold, or
    off-lock mutation of guarded state fails the test that provoked
    it.  The hold threshold is generous — chaos deliberately injects
    store delays *under* the connection lock, and CI machines stall.
    """
    watcher = install_watcher(hold_threshold=5.0)
    try:
        yield watcher
    finally:
        uninstall_watcher()
    assert watcher.findings == [], watcher.format_report()


def _cells():
    """A small mixed workload: distinct cells plus one duplicate."""
    return [
        ExperimentConfig("montage", "nfs", 2),
        ExperimentConfig("montage", "s3", 2),
        ExperimentConfig("epigenome", "nfs", 2),
        ExperimentConfig("montage", "nfs", 4),
        ExperimentConfig("montage", "nfs", 2),  # duplicate of job 1
    ]


def _submit_retrying(client, cells, deadline_s=30.0, **kwargs):
    """Submit with manual retry: POSTs are not auto-retried, and the
    chaos middleware only injects errors *before* the app runs, so a
    failed submission is guaranteed not to have enqueued anything."""
    t0 = time.monotonic()
    while True:
        try:
            return client.submit(cells, **kwargs)
        except ServiceError as exc:
            if exc.status not in TRANSIENT_STATUSES:
                raise
            if time.monotonic() - t0 > deadline_s:
                raise
            time.sleep(0.05)


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_chaos_property_every_job_terminates_cleanly(seed, tmp_path):
    spec = ChaosSpec(
        seed=seed,
        store_error_rate=0.04,
        store_delay_rate=0.02,
        store_delay_seconds=0.002,
        http_error_rate=0.10,
        http_delay_rate=0.05,
        http_delay_seconds=0.005,
        http_drop_rate=0.15,
        kill_job_rate=0.05,
        kill_cell_rate=0.05,
    )
    db = str(tmp_path / "chaos.db")
    crash_dir = str(tmp_path / "crash")
    harness = chaos_service(spec, db_path=db, lease_seconds=1.0,
                            max_attempts=8, crash_dir=crash_dir)
    client = harness.client()
    try:
        job_ids = [
            _submit_retrying(client, [cell], scale="small")["job_id"]
            for cell in _cells()
        ]
        statuses = {}
        for job_id in job_ids:
            status = client.wait(job_id, timeout=120, poll_interval=0.1)
            statuses[job_id] = status
            # (a) terminal, with a recorded reason when failed.
            assert status["state"] in TERMINAL, status
            if status["state"] == "failed":
                assert status["error"], status

        # (b) nothing lost: every submitted id is still known, and no
        # job is stuck queued/running.
        with harness.schedule.calm():
            listed = {j["id"]: j for j in client.list_jobs()}
            assert set(job_ids) <= set(listed)
            assert all(listed[i]["state"] in TERMINAL for i in job_ids)

            # (d) the store itself is intact.
            rows = harness.store.query("PRAGMA integrity_check")
            assert rows[0][0] == "ok"

            # The schedule really fired (otherwise this test proves
            # nothing) ...
            assert harness.schedule.total_injected() > 0
            # ... and the exposition stayed valid under fire.
            assert validate_exposition(client.metrics()) == []
    finally:
        harness.stop()

    # A clean restart over the same database serves the survivors:
    # chaos gone, every done job's results are fetchable and the
    # duplicate submission proves cache idempotence (byte-identical
    # payload for the same digest).
    clean = chaos_service(ChaosSpec(seed=0), db_path=db,
                          lease_seconds=5.0)
    client2 = clean.client()
    try:
        assert clean.schedule.total_injected() == 0
        payload_by_digest = {}
        n_done = 0
        for job_id, status in statuses.items():
            if status["state"] != "done":
                continue
            n_done += 1
            for cell in client2.result(job_id)["cells"]:
                digest = cell["digest"]
                previous = payload_by_digest.setdefault(
                    digest, cell["result"])
                # (c) same digest -> byte-identical payload, no matter
                # how many crashes and re-runs produced it.
                assert cell["result"] == previous
        assert n_done > 0  # chaos may fail jobs, but not all of them
        # Resubmitting a done cell is a pure cache hit on the clean
        # stack: the kernel never re-runs an answered scenario.
        done_cells = [c for c, j in zip(_cells(), job_ids)
                      if statuses[j]["state"] == "done"]
        doc = client2.submit([done_cells[0]], scale="small")
        status = client2.wait(doc["job_id"], timeout=60)
        assert status["state"] == "done"
        assert status["n_cache_hits"] == 1
    finally:
        clean.stop()


class KillNthPickup:
    """Chaos hook killing the worker thread at its Nth job pickup."""

    def __init__(self, at=1):
        self.at = at
        self.pickups = 0

    def on_job(self, job):
        self.pickups += 1
        if self.pickups == self.at:
            raise WorkerKilled(f"test kill at pickup {self.pickups}")

    def on_cell(self, job, n_done):
        pass


class KillEveryPickup:
    """Chaos hook that kills the worker at every pickup (poison pill)."""

    def on_job(self, job):
        raise WorkerKilled("poison job")

    def on_cell(self, job, n_done):
        pass


def _stack(tmp_path, max_attempts=3, **worker_kwargs):
    store = open_store(str(tmp_path / "svc.db"))
    queue = JobQueue(store, max_attempts=max_attempts)
    cache = CellCache(store)
    worker = ServiceWorker(store, queue, cache, poll_interval=0.02,
                           **worker_kwargs)
    return store, queue, cache, worker


def _wait_for(predicate, timeout=30.0, interval=0.02):
    t0 = time.monotonic()
    while time.monotonic() - t0 < timeout:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_dead_worker_lease_expires_and_job_completes(tmp_path):
    """Satellite: a *real* dead worker, recovered by lease expiry alone.

    The worker thread is killed mid-``run_job`` (no ack, no supervisor
    running), the job's short lease expires, and a healthy worker
    re-queues and completes it with the attempt count preserved.
    """
    store, queue, cache, worker = _stack(
        tmp_path, chaos=KillNthPickup(at=1), lease_seconds=0.3)
    job_id = queue.submit(
        "scenario",
        {"config": ExperimentConfig("montage", "nfs", 2).to_dict(),
         "scale": "small"})

    # Run the worker thread *without* its supervisor: this is the
    # whole-process-death scenario where only the lease protects us.
    thread = threading.Thread(target=worker._run_guarded, daemon=True)
    thread.start()
    assert _wait_for(lambda: not thread.is_alive(), timeout=10)
    assert isinstance(worker._crash, WorkerKilled)

    # The job is stranded mid-lease: still 'running', one attempt
    # burned, nothing acked.
    job = queue.get(job_id)
    assert job.state == "running"
    assert job.attempts == 1
    assert job.lease_owner == worker.name

    # Before the lease expires nothing can claim it.
    assert queue.lease("healthy-worker", 10.0) is None

    time.sleep(0.35)  # let the real lease run out

    # A healthy worker now recovers and completes the job.
    healthy = ServiceWorker(store, queue, cache, name="healthy-worker",
                            poll_interval=0.02, lease_seconds=10.0)
    healthy.start()
    try:
        assert _wait_for(lambda: queue.get(job_id).state == "done",
                         timeout=60)
    finally:
        assert healthy.stop()
    job = queue.get(job_id)
    assert job.state == "done"
    assert job.attempts == 2  # first (killed) + second (clean)
    assert job.n_done == 1 and job.n_failed == 0
    store.close()


def test_supervisor_restarts_worker_and_job_completes(tmp_path):
    """The fast path: the supervisor requeues + respawns in-process."""
    chaos = KillNthPickup(at=1)
    store, queue, cache, worker = _stack(
        tmp_path, chaos=chaos, lease_seconds=60.0)
    # Lease far longer than the test: if the job completes, it was the
    # supervisor's requeue, not lease expiry.
    job_id = queue.submit(
        "scenario",
        {"config": ExperimentConfig("montage", "nfs", 2).to_dict(),
         "scale": "small"})
    worker.start()
    try:
        assert _wait_for(lambda: queue.get(job_id).state == "done",
                         timeout=60)
    finally:
        assert worker.stop()
    job = queue.get(job_id)
    assert job.attempts == 2
    assert worker.n_restarts == 1
    assert chaos.pickups == 2
    from repro.telemetry.export import to_prometheus
    assert ('service_worker_restarts_total{worker="worker-0"} 1'
            in to_prometheus(worker.metrics))
    store.close()


def test_poison_job_is_quarantined_with_crash_bundle(tmp_path):
    """A job that kills its worker every time fails cleanly at the
    attempt cap instead of crash-looping forever, and leaves a crash
    bundle behind for postmortem."""
    crash_dir = str(tmp_path / "crash")
    store, queue, cache, worker = _stack(
        tmp_path, max_attempts=2, chaos=KillEveryPickup(),
        lease_seconds=60.0, crash_dir=crash_dir)
    job_id = queue.submit(
        "scenario",
        {"config": ExperimentConfig("montage", "nfs", 2).to_dict(),
         "scale": "small"})
    worker.start()
    try:
        assert _wait_for(lambda: queue.get(job_id).state == "failed",
                         timeout=60)
    finally:
        worker.stop()
    job = queue.get(job_id)
    assert job.state == "failed"
    assert job.attempts == 2
    assert "quarantined" in job.error
    assert "WorkerKilled" in job.error
    # The supervisor kept the worker pool alive through both crashes.
    assert worker.n_restarts >= 2

    # Crash bundles: one per crash, schema-valid, pointing at the job.
    bundles = load_crash_bundles(crash_dir)
    assert len(bundles) >= 1
    for _, bundle in bundles:
        assert validate_bundle(bundle) == []
        assert bundle["job"]["id"] == job_id
        assert bundle["error"]["type"] == "WorkerKilled"
    store.close()


def test_flaky_store_faults_are_absorbed_by_retries(tmp_path):
    """Store-level chaos alone: every statement-level injection is
    retried away; the queue protocol never sees a fault."""
    schedule = ChaosSchedule(ChaosSpec(seed=5, store_error_rate=0.10))
    store = FlakySQLiteStore(str(tmp_path / "flaky.db"),
                             schedule=schedule)
    queue = JobQueue(store)
    ids = [queue.submit("scenario", {"i": i}) for i in range(30)]
    assert len(set(ids)) == 30
    for job_id in ids:
        assert queue.get(job_id).state == "queued"
    counts = queue.counts()
    assert counts["queued"] == 30
    assert schedule.injected["store.error"] > 0
    from repro.telemetry.export import to_prometheus
    text = to_prometheus(store.metrics)
    assert "service_retry_attempts_total" in text
    with schedule.calm():
        assert store.query("PRAGMA integrity_check")[0][0] == "ok"
    store.close()
