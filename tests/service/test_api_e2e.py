"""End-to-end service tests over a real socket (ephemeral port).

One fixture boots the whole stack — SQLite store, job queue, cell
cache, a worker thread, the WSGI app behind an actual HTTP server —
and the tests drive it exclusively through :class:`ServiceClient`,
exactly the path ``repro-ec2 submit``/``status``/``fetch`` use.
"""

import json
import threading

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import ExperimentConfig
from repro.observe.events import EVENT_KINDS, validate_event
from repro.service import (
    CellCache,
    JobQueue,
    ServiceApp,
    ServiceWorker,
    open_store,
    serve,
)
from repro.service.client import ServiceClient, ServiceError
from repro.telemetry.export import validate_exposition


class Stack:
    """The whole service, bound to an ephemeral port."""

    def __init__(self):
        self.store = open_store()
        self.queue = JobQueue(self.store)
        self.cache = CellCache(self.store)
        self.worker = ServiceWorker(self.store, self.queue, self.cache)
        self.app = ServiceApp(self.store, self.queue, self.cache)
        self.server = serve(self.app, port=0, quiet=True)
        host, port = self.server.server_address[:2]
        self.client = ServiceClient(f"http://{host}:{port}", timeout=30)
        self._http = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self._http.start()
        self.worker.start()

    def close(self):
        self.worker.stop()
        self.server.shutdown()
        self.server.server_close()
        self.store.close()


@pytest.fixture()
def stack():
    s = Stack()
    yield s
    s.close()


def _cell(storage="nfs", nodes=2, **overrides):
    return ExperimentConfig("montage", storage, nodes, **overrides)


def test_health_and_404(stack):
    doc = stack.client.health()
    assert doc["status"] == "ok"
    with pytest.raises(ServiceError) as err:
        stack.client.status(999)
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        stack.client.result_by_digest("0" * 64)
    assert err.value.status == 404


def test_submit_poll_fetch_roundtrip(stack):
    doc = stack.client.submit([_cell()], scale="small")
    assert doc["kind"] == "scenario" and doc["n_cells"] == 1
    job_id = doc["job_id"]
    status = stack.client.wait(job_id, timeout=120)
    assert status["state"] == "done"
    assert status["n_done"] == 1 and status["n_failed"] == 0

    result = stack.client.result(job_id)
    cells = result["cells"]
    assert len(cells) == 1
    assert cells[0]["label"] == "montage/nfs@2"
    assert cells[0]["cached"] is False
    payload = cells[0]["result"]
    assert payload["schema"] == 1
    assert payload["run"]["end_time"] > 0

    # The stored payload is addressable by scenario digest too.
    by_digest = stack.client.result_by_digest(doc["digests"][0])
    assert by_digest == payload

    csv_text = stack.client.result_csv(job_id)
    assert csv_text.splitlines()[0].startswith("app,storage,nodes")
    assert "montage" in csv_text


def test_warm_resubmit_is_all_cache_hits_and_bit_identical(
        stack, monkeypatch):
    cells = [_cell("nfs"), _cell("s3")]
    first = stack.client.submit(cells, scale="small")
    assert stack.client.wait(first["job_id"],
                             timeout=120)["state"] == "done"
    cold = stack.client.result(first["job_id"])

    # Second identical submission: the kernel must not run at all.
    def _boom(*args, **kwargs):
        raise AssertionError("warm resubmit reached the kernel")

    monkeypatch.setattr(runner_mod, "run_experiment", _boom)
    second = stack.client.submit(cells, scale="small")
    status = stack.client.wait(second["job_id"], timeout=60)
    assert status["state"] == "done"
    assert status["n_cache_hits"] == status["n_done"] == len(cells)
    warm = stack.client.result(second["job_id"])
    for c, w in zip(cold["cells"], warm["cells"]):
        assert w["cached"] is True
        assert w["digest"] == c["digest"]
        # Bit-identical payloads, not merely equal numbers.
        assert json.dumps(w["result"], sort_keys=True) \
            == json.dumps(c["result"], sort_keys=True)
    # And the warm job's event log shows zero kernel activity: no
    # cell pays wall-clock time.
    finished = [e for e in stack.client.events(second["job_id"])
                if e["kind"] == "cell_finished"]
    assert len(finished) == len(cells)
    assert all(e["wall_seconds"] == 0.0 for e in finished)


def test_event_log_is_schema_valid_and_streamable(stack):
    doc = stack.client.submit([_cell()], scale="small")
    # follow=1 streams until the job reaches a terminal state, so
    # collecting the events also proves the long-poll path works.
    events = list(stack.client.events(doc["job_id"], follow=True))
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "sweep_started"
    assert kinds[-1] == "sweep_finished"
    assert "cell_finished" in kinds
    for event in events:
        assert event["kind"] in EVENT_KINDS
        assert validate_event(event) == []
    # Sequence numbers are gapless from 1.
    assert [e["seq"] for e in events] == list(range(1, len(events) + 1))


def test_metrics_exposition_is_valid(stack):
    doc = stack.client.submit([_cell()], scale="small")
    stack.client.wait(doc["job_id"], timeout=120)
    stack.client.submit([_cell()], scale="small")
    stack.client.wait(doc["job_id"] + 1, timeout=60)
    text = stack.client.metrics()
    assert validate_exposition(text) == []
    assert 'sweep_cache_hits_total{app="montage",storage="nfs"} 1' in text
    assert 'service_cells_total{source="cache"} 1' in text
    assert 'service_cells_total{source="simulated"} 1' in text
    assert 'service_jobs_submitted_total{kind="scenario"} 2' in text
    assert "sweep_cache_stored_results 1" in text


def test_scales_never_share_cache_entries(stack):
    # 'scale' changes the simulated workflow without changing the
    # config digest, so small- and paper-scale results must live in
    # separate cache namespaces — a small smoke run may never answer
    # a paper-scale submission.
    cell = ExperimentConfig("epigenome", "local", 1)
    small = stack.client.submit([cell], scale="small")
    assert stack.client.wait(small["job_id"],
                             timeout=120)["state"] == "done"
    paper = stack.client.submit([cell])
    status = stack.client.wait(paper["job_id"], timeout=120)
    assert status["state"] == "done"
    assert status["n_cache_hits"] == 0  # NOT served from the small run
    small_cell = stack.client.result(small["job_id"])["cells"][0]
    paper_cell = stack.client.result(paper["job_id"])["cells"][0]
    assert small_cell["digest"] == "small:" + cell.digest()
    assert paper_cell["digest"] == cell.digest()
    assert (small_cell["result"]["run"]["end_time"]
            != paper_cell["result"]["run"]["end_time"])
    # Resubmitting at paper scale is a hit within its own namespace.
    again = stack.client.submit([cell])
    assert stack.client.wait(again["job_id"],
                             timeout=60)["n_cache_hits"] == 1


def test_faultsweep_job_expands_the_grid(stack):
    doc = stack.client.submit([_cell(nodes=1)], kind="faultsweep",
                              scale="small",
                              error_rates=[0.001], node_mtbfs=[50000.0])
    assert doc["n_cells"] == 3  # baseline + one rate + one mtbf
    status = stack.client.wait(doc["job_id"], timeout=180)
    assert status["state"] == "done"
    assert status["n_done"] == 3
    labels = [c["label"]
              for c in stack.client.result(doc["job_id"])["cells"]]
    assert len(labels) == 3


def test_invalid_submissions_fail_eagerly_with_400(stack):
    bad = _cell().to_dict()
    bad["n_workers"] = 0
    with pytest.raises(ServiceError) as err:
        stack.client._request("POST", "/api/v1/jobs",
                              body={"kind": "scenario", "config": bad})
    assert err.value.status == 400
    # Nothing was enqueued for the invalid payload.
    assert all(j["state"] != "queued" for j in stack.client.list_jobs())
    with pytest.raises(ServiceError) as err:
        stack.client._request("POST", "/api/v1/jobs",
                              body={"kind": "banana"})
    assert err.value.status == 400


def test_result_of_unfinished_job_is_404(stack):
    # Stop the worker so the job stays queued.
    stack.worker.stop()
    doc = stack.client.submit([_cell()], scale="small")
    with pytest.raises(ServiceError) as err:
        stack.client.result(doc["job_id"])
    assert err.value.status == 404
    assert "once done" in err.value.message


def test_concurrent_submitters_do_not_lock_the_database(stack):
    # Many threads racing submissions through HTTP must all succeed —
    # the store lock serializes them instead of surfacing SQLite's
    # 'database is locked'.
    n_threads, per_thread = 8, 5
    errors, ids = [], []
    lock = threading.Lock()

    def submitter(tid):
        try:
            client = ServiceClient(stack.client.base_url, timeout=30)
            for i in range(per_thread):
                doc = client.submit(
                    [_cell(nodes=1 + (tid + i) % 4)], scale="small")
                with lock:
                    ids.append(doc["job_id"])
        except Exception as exc:  # noqa: BLE001 - recording any failure
            errors.append(exc)

    threads = [threading.Thread(target=submitter, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(set(ids)) == n_threads * per_thread
    # The single worker eventually drains all of them (4 distinct
    # scenarios, so all but 4 jobs are pure cache hits).
    for job_id in ids:
        status = stack.client.wait(job_id, timeout=300)
        assert status["state"] == "done", status
    assert len(stack.cache) == 4
