"""Content-addressed cell cache + ``run_sweep(cache=...)`` wiring."""

import pytest

import repro.experiments.runner as runner_mod
from repro.apps import build_synthetic
from repro.experiments import ExperimentConfig, run_sweep
from repro.service.cache import CellCache
from repro.service.store import open_store
from repro.telemetry.export import to_prometheus, validate_exposition


def small_wf(app_name="any"):
    return build_synthetic(n_tasks=24, width=8, cpu_seconds=5.0, seed=1)


def _cells(collect_traces=False):
    return [
        ExperimentConfig("synthetic", "local", 1,
                         collect_traces=collect_traces),
        ExperimentConfig("synthetic", "nfs", 2,
                         collect_traces=collect_traces),
        ExperimentConfig("synthetic", "s3", 2,
                         collect_traces=collect_traces),
    ]


@pytest.fixture()
def cache():
    store = open_store()
    yield CellCache(store)
    store.close()


def test_miss_then_hit_with_counters(cache):
    config = _cells()[0]
    assert cache.get(config) is None
    assert (cache.hits, cache.misses) == (0, 1)
    result = run_sweep([config], workflow_factory=small_wf)[0]
    assert cache.put(config, result) is True
    assert cache.peek(config) is True  # peek never counts
    hit = cache.get(config)
    assert hit is not None
    assert (cache.hits, cache.misses) == (1, 1)
    assert repr(hit.makespan) == repr(result.makespan)
    assert hit.summary_row() == result.summary_row()
    assert len(cache) == 1


def test_sweep_populates_and_serves_the_cache(cache):
    cells = _cells()
    cold = run_sweep(cells, workflow_factory=small_wf, cache=cache)
    assert cache.misses == len(cells) and cache.hits == 0
    assert len(cache) == len(cells)
    warm = run_sweep(cells, workflow_factory=small_wf, cache=cache)
    assert cache.hits == len(cells)
    for c, w in zip(cold, warm):
        assert w.summary_row() == c.summary_row()
        assert repr(w.makespan) == repr(c.makespan)


def test_warm_sweep_never_simulates(cache, monkeypatch):
    cells = _cells()
    run_sweep(cells, workflow_factory=small_wf, cache=cache)

    def _boom(*args, **kwargs):
        raise AssertionError("cache hit must not reach the kernel")

    monkeypatch.setattr(runner_mod, "run_experiment", _boom)
    warm = run_sweep(cells, workflow_factory=small_wf, cache=cache)
    assert all(r is not None for r in warm)


def test_serial_and_parallel_sweeps_build_identical_cache_contents():
    cells = _cells(collect_traces=True)
    serial_store, parallel_store = open_store(), open_store()
    try:
        run_sweep(cells, workflow_factory=small_wf,
                  cache=CellCache(serial_store))
        run_sweep(cells, workflow_factory=small_wf, jobs=3,
                  cache=CellCache(parallel_store))
        digests = [d["digest"] for d in serial_store.result_rows()]
        assert digests == [d["digest"]
                           for d in parallel_store.result_rows()]
        # Byte-identical payloads, not merely matching digests.
        for digest in digests:
            assert (parallel_store.get_result(digest)
                    == serial_store.get_result(digest))
    finally:
        serial_store.close()
        parallel_store.close()


def test_partially_warm_parallel_sweep_interleaves_correctly(cache):
    cells = _cells()
    run_sweep([cells[1]], workflow_factory=small_wf, cache=cache)
    assert len(cache) == 1
    results = run_sweep(cells, workflow_factory=small_wf, jobs=2,
                        cache=cache)
    # Result order is config order regardless of which index was
    # cached, and the sweep only simulated the two misses.
    assert [r.config.label for r in results] == [c.label for c in cells]
    assert len(cache) == len(cells)
    assert cache.hits == 1


def test_scoped_caches_isolate_result_universes(cache):
    config = _cells()[0]
    result = run_sweep([config], workflow_factory=small_wf)[0]
    small = cache.scoped("small")
    assert small.scoped("small") is small
    assert small.put(config, result) is True
    # The namespaced entry is invisible to the base cache...
    assert cache.peek(config) is False
    assert cache.get(config) is None
    # ...and both scopes can hold their own result for one digest.
    assert cache.put(config, result) is True
    assert small.key(config) == "small:" + config.digest()
    assert cache.key(config) == config.digest()
    # Counters are shared across scopes (one telemetry surface).
    assert small.hits == cache.hits


def test_cache_counters_export_as_valid_prometheus(cache):
    cells = _cells()
    run_sweep(cells, workflow_factory=small_wf, cache=cache)
    run_sweep(cells, workflow_factory=small_wf, cache=cache)
    text = to_prometheus(cache.metrics)
    assert validate_exposition(text) == []
    assert 'sweep_cache_hits_total{app="synthetic",storage="nfs"} 1' in text
    assert ('sweep_cache_misses_total{app="synthetic",storage="nfs"} 1'
            in text)
    assert "sweep_cache_stored_results 3" in text
