"""Lossless ExperimentResult round-trip (satellite of the service PR).

The content-addressed cache serves deserialized payloads in place of
fresh simulations, so ``result_from_json(result_to_json(r))`` must be
indistinguishable from ``r``: same numbers to the last bit, same
telemetry exposition, same fault report — and the canonical JSON must
be byte-stable across cycles so payloads can be compared with ``==``.
"""

import json

import pytest

from repro.apps import build_synthetic
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.serialize import (
    RESULT_SCHEMA_VERSION,
    result_digest,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.telemetry.export import to_json_snapshot, to_prometheus


def _small_wf():
    return build_synthetic(n_tasks=16, width=4, cpu_seconds=5.0, seed=1)


def _run(storage="nfs", **overrides):
    config = ExperimentConfig("synthetic", storage, 2, **overrides)
    return run_experiment(config, workflow=_small_wf())


def _assert_equivalent(original, clone):
    assert clone.config == original.config
    assert repr(clone.makespan) == repr(original.makespan)
    assert repr(clone.cost.per_hour_total) == repr(original.cost.per_hour_total)
    assert clone.summary_row() == original.summary_row()
    assert [r for r in clone.run.records] == [r for r in original.run.records]
    assert clone.run.storage_stats == original.run.storage_stats


def test_plain_result_round_trips():
    original = _run()
    clone = result_from_json(result_to_json(original))
    _assert_equivalent(original, clone)
    assert clone.trace is None and clone.metrics is None


def test_traced_result_round_trips_telemetry_bit_for_bit():
    original = _run(collect_traces=True)
    clone = result_from_json(result_to_json(original))
    _assert_equivalent(original, clone)
    # The replayed collectors reproduce the exact record stream...
    o_records = [(r.time, r.category, r.event, r.fields)
                 for r in original.trace.records]
    c_records = [(r.time, r.category, r.event, r.fields)
                 for r in clone.trace.records]
    assert c_records == o_records
    assert clone.trace._next_id == original.trace._next_id
    # ...and byte-identical exports in both formats.
    assert (to_json_snapshot(clone.metrics)
            == to_json_snapshot(original.metrics))
    assert to_prometheus(clone.metrics) == to_prometheus(original.metrics)


def test_s3_and_faulted_results_round_trip():
    s3 = _run("s3")
    assert s3.cost.s3_fees is not None
    _assert_equivalent(s3, result_from_json(result_to_json(s3)))

    faulted = _run(storage_error_rate=0.01, retries=10)
    assert faulted.faults is not None
    clone = result_from_json(result_to_json(faulted))
    _assert_equivalent(faulted, clone)
    assert clone.faults == faulted.faults


def test_canonical_json_is_stable_across_cycles():
    original = _run(collect_traces=True)
    once = result_to_json(original)
    twice = result_to_json(result_from_json(once))
    assert twice == once
    assert result_digest(result_from_json(once)) == result_digest(original)


def test_document_is_versioned_and_rejects_unknown_schema():
    doc = result_to_dict(_run())
    assert doc["schema"] == RESULT_SCHEMA_VERSION
    doc["schema"] = RESULT_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="unsupported result schema"):
        result_from_dict(doc)


def test_plan_is_excluded_by_design():
    # run.plan holds the live simulated world; serialized results
    # deliberately drop it (nothing downstream of a finished run
    # reads it).
    original = _run()
    clone = result_from_json(result_to_json(original))
    assert clone.run.plan is None


def test_result_methods_survive_round_trip():
    original = _run(collect_traces=True)
    clone = result_from_json(result_to_json(original))
    assert clone.to_json() == original.to_json()
    from repro.experiments.runner import ExperimentResult
    again = ExperimentResult.from_json(clone.to_json())
    assert again.summary_row() == original.summary_row()
