"""Tests for the experiment configuration and runner."""

import pytest

from repro.apps import build_synthetic
from repro.experiments import (
    ExperimentConfig,
    PAPER_NODE_COUNTS,
    PAPER_STORAGE_SYSTEMS,
    paper_matrix,
    run_experiment,
    run_sweep,
)
from repro.experiments.results import (
    cost_matrix,
    format_bar_chart,
    format_figure_table,
    makespan_matrix,
    speedup_table,
    to_csv,
)


def small_wf(app_name="any"):
    return build_synthetic(n_tasks=24, width=8, cpu_seconds=5.0, seed=1)


# ------------------------------------------------------------- config

def test_config_label():
    cfg = ExperimentConfig("montage", "nfs", 4)
    assert cfg.label == "montage/nfs@4"


def test_config_validity_rules():
    assert ExperimentConfig("m", "local", 1).is_valid()[0]
    assert not ExperimentConfig("m", "local", 2).is_valid()[0]
    assert not ExperimentConfig("m", "pvfs", 1).is_valid()[0]
    assert not ExperimentConfig("m", "glusterfs-nufa", 1).is_valid()[0]
    assert ExperimentConfig("m", "s3", 1).is_valid()[0]
    with pytest.raises(ValueError):
        ExperimentConfig("m", "nfs", 0)


def test_config_with():
    cfg = ExperimentConfig("montage", "nfs", 4)
    cfg2 = cfg.with_(n_workers=8)
    assert cfg2.n_workers == 8 and cfg2.app == "montage"
    assert cfg.n_workers == 4  # original untouched


def test_paper_matrix_counts():
    cells = paper_matrix("montage")
    # local@1 + s3x4 + nfsx4 + (nufa+dist+pvfs)x3 = 1+4+4+9 = 18
    assert len(cells) == 18
    assert all(c.is_valid()[0] for c in cells)
    labels = {c.label for c in cells}
    assert "montage/local@1" in labels
    assert "montage/glusterfs-nufa@1" not in labels


def test_paper_matrix_without_local():
    cells = paper_matrix("montage", include_local=False)
    assert not any(c.storage == "local" for c in cells)


# ------------------------------------------------------------- runner

def test_run_experiment_invalid_config_rejected():
    with pytest.raises(ValueError, match="invalid experiment"):
        run_experiment(ExperimentConfig("montage", "local", 4))


@pytest.mark.parametrize("storage,nodes", [
    ("local", 1), ("s3", 2), ("nfs", 2),
    ("glusterfs-nufa", 2), ("glusterfs-distribute", 2), ("pvfs", 2),
])
def test_run_experiment_all_systems(storage, nodes):
    cfg = ExperimentConfig("synthetic", storage, nodes)
    result = run_experiment(cfg, workflow=small_wf())
    assert result.makespan > 0
    assert result.run.n_jobs == 24
    assert result.cost.per_hour_total > 0
    assert result.cost.per_second_total <= result.cost.per_hour_total


def test_run_experiment_is_deterministic():
    cfg = ExperimentConfig("synthetic", "glusterfs-nufa", 2, seed=5)
    a = run_experiment(cfg, workflow=small_wf())
    b = run_experiment(cfg, workflow=small_wf())
    assert a.makespan == b.makespan


def test_nfs_run_bills_extra_server():
    cfg = ExperimentConfig("synthetic", "nfs", 2)
    r_nfs = run_experiment(cfg, workflow=small_wf())
    r_gfs = run_experiment(cfg.with_(storage="glusterfs-nufa"),
                           workflow=small_wf())
    # Same worker count but NFS pays for the m1.xlarge server too.
    assert r_nfs.cost.resource.per_hour == pytest.approx(
        r_gfs.cost.resource.per_hour + 0.68)


def test_s3_run_reports_fees():
    cfg = ExperimentConfig("synthetic", "s3", 1)
    r = run_experiment(cfg, workflow=small_wf())
    assert r.cost.s3_fees is not None
    assert r.run.storage_stats.put_requests == 24  # one PUT per output


def test_traces_collected_when_requested():
    cfg = ExperimentConfig("synthetic", "local", 1, collect_traces=True)
    r = run_experiment(cfg, workflow=small_wf())
    assert r.trace is not None
    assert r.trace.count("task", "end") == 24


def test_sweep_with_factory_and_progress():
    cells = [ExperimentConfig("synthetic", "local", 1),
             ExperimentConfig("synthetic", "nfs", 2)]
    seen = []
    results = run_sweep(cells, workflow_factory=small_wf,
                        progress=seen.append)
    assert len(results) == 2 and len(seen) == 2


def test_summary_row_fields():
    r = run_experiment(ExperimentConfig("synthetic", "local", 1),
                       workflow=small_wf())
    row = r.summary_row()
    assert row["storage"] == "local" and row["jobs"] == 24
    assert row["makespan_s"] > 0


# ------------------------------------------------------------- results

def _results():
    cells = [ExperimentConfig("synthetic", "local", 1),
             ExperimentConfig("synthetic", "glusterfs-nufa", 2)]
    return run_sweep(cells, workflow_factory=small_wf)


def test_matrices_and_tables():
    results = _results()
    m = makespan_matrix(results)
    assert ("local", 1) in m and ("glusterfs-nufa", 2) in m
    c = cost_matrix(results, per="hour")
    assert all(v > 0 for v in c.values())
    with pytest.raises(ValueError):
        cost_matrix(results, per="day")
    table = format_figure_table(m, title="T")
    assert "T" in table and "local" in table
    chart = format_bar_chart(m, title="B")
    assert "#" in chart


def test_to_csv():
    results = _results()
    csv_text = to_csv(results)
    assert csv_text.startswith("app,")
    assert len(csv_text.strip().splitlines()) == 3
    assert to_csv([]) == ""


def test_speedup_table():
    m = {("nfs", 1): 100.0, ("nfs", 2): 50.0, ("nfs", 4): 30.0}
    s = speedup_table(m, "nfs")
    assert s == {1: 1.0, 2: 2.0, 4: pytest.approx(100 / 30)}
    assert speedup_table(m, "s3") == {}
