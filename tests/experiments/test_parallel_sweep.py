"""Serial vs process-parallel sweeps must be bit-identical.

``run_sweep(jobs=N)`` farms cells out to worker processes and replays
their telemetry in the parent; nothing about the numbers, ordering, or
trace streams may depend on N.
"""

import pytest

from repro.apps import build_synthetic
from repro.experiments import ExperimentConfig, run_sweep
from repro.experiments.faultsweep import fault_inflation_sweep


def small_wf(app_name="any"):
    return build_synthetic(n_tasks=24, width=8, cpu_seconds=5.0, seed=1)


def _cells(collect_traces=False):
    return [
        ExperimentConfig("synthetic", "local", 1,
                         collect_traces=collect_traces),
        ExperimentConfig("synthetic", "nfs", 2,
                         collect_traces=collect_traces),
        ExperimentConfig("synthetic", "s3", 2,
                         collect_traces=collect_traces),
        ExperimentConfig("synthetic", "glusterfs-distribute", 2,
                         collect_traces=collect_traces),
    ]


def test_parallel_sweep_matches_serial_bit_for_bit():
    serial = run_sweep(_cells(), workflow_factory=small_wf)
    parallel = run_sweep(_cells(), workflow_factory=small_wf, jobs=4)
    assert len(parallel) == len(serial) == 4
    for s, p in zip(serial, parallel):
        assert p.config.label == s.config.label
        assert repr(p.makespan) == repr(s.makespan)
        assert repr(p.cost.per_hour_total) == repr(s.cost.per_hour_total)
        assert p.summary_row() == s.summary_row()


def test_parallel_sweep_replays_traces_identically():
    serial = run_sweep(_cells(collect_traces=True),
                       workflow_factory=small_wf)
    parallel = run_sweep(_cells(collect_traces=True),
                         workflow_factory=small_wf, jobs=2)
    for s, p in zip(serial, parallel):
        assert s.trace is not None and p.trace is not None
        s_records = [(r.time, r.category, r.event, r.fields)
                     for r in s.trace.records]
        p_records = [(r.time, r.category, r.event, r.fields)
                     for r in p.trace.records]
        assert p_records == s_records


def test_parallel_sweep_preserves_submission_order():
    # More cells than workers: completion order may scramble, result
    # order may not.
    cells = [ExperimentConfig("synthetic", "nfs", n) for n in (1, 2, 3, 4)]
    results = run_sweep(cells, workflow_factory=small_wf, jobs=2)
    assert [r.config.n_workers for r in results] == [1, 2, 3, 4]


def test_parallel_fault_sweep_matches_serial():
    base = ExperimentConfig("synthetic", "nfs", 2, seed=3)
    serial = fault_inflation_sweep(base, error_rates=(0.01, 0.05),
                                   node_mtbfs=(4000.0,),
                                   workflow=small_wf())
    parallel = fault_inflation_sweep(base, error_rates=(0.01, 0.05),
                                     node_mtbfs=(4000.0,),
                                     workflow=small_wf(), jobs=3)
    assert [p.row() for p in parallel] == [s.row() for s in serial]


def test_parallel_fault_sweep_replays_full_telemetry():
    # Beyond the flat points: the underlying results (exposed via
    # results_sink) must carry bit-identical metrics snapshots and
    # trace streams regardless of worker count.
    base = ExperimentConfig("synthetic", "nfs", 2, seed=3,
                            collect_traces=True)
    serial_results, parallel_results = [], []
    serial = fault_inflation_sweep(base, error_rates=(0.02,),
                                   node_mtbfs=(4000.0,),
                                   workflow=small_wf(),
                                   results_sink=serial_results)
    parallel = fault_inflation_sweep(base, error_rates=(0.02,),
                                     node_mtbfs=(4000.0,),
                                     workflow=small_wf(), jobs=2,
                                     results_sink=parallel_results)
    assert [p.row() for p in parallel] == [s.row() for s in serial]
    assert len(parallel_results) == len(serial_results) == 3
    for s, p in zip(serial_results, parallel_results):
        assert p.config.label == s.config.label
        assert p.metrics is not None and s.metrics is not None
        assert p.metrics.to_json() == s.metrics.to_json()
        s_records = [(r.time, r.category, r.event, r.fields)
                     for r in s.trace.records]
        p_records = [(r.time, r.category, r.event, r.fields)
                     for r in p.trace.records]
        assert p_records == s_records


def test_jobs_validation():
    with pytest.raises(ValueError):
        run_sweep(_cells(), workflow_factory=small_wf, jobs=0)
