"""Tests for the one-shot reproduction report."""

import pytest

from repro.apps import build_synthetic
from repro.experiments import build_report
from repro.experiments.report import ReproductionReport


@pytest.fixture(scope="module")
def quick_report():
    # One app, tiny synthetic workflow: exercises the whole pipeline
    # in a couple of seconds.  Shape checks will mostly fail on this
    # stand-in workload — the test asserts plumbing, not physics.
    factory = lambda app: build_synthetic(  # noqa: E731
        n_tasks=24, width=8, cpu_seconds=5.0, seed=1)
    return build_report(apps=("epigenome",), workflow_factory=factory)


def test_report_structure(quick_report):
    assert set(quick_report.sweeps) == {"epigenome"}
    assert len(quick_report.sweeps["epigenome"]) == 18  # full matrix
    assert "TABLE I" in quick_report.table1_text
    assert "epigenome" in quick_report.table1_matches
    assert quick_report.shape_results["epigenome"]
    assert quick_report.cost_results["epigenome"]


def test_report_markdown_rendering(quick_report):
    text = quick_report.to_markdown()
    assert text.startswith("# Reproduction report")
    assert "## Fig. 3 — epigenome makespan" in text
    assert "## Fig. 6 — epigenome cost" in text
    assert "per-hour billing" in text
    assert text.count("[PASS]") + text.count("[FAIL]") == (
        len(quick_report.shape_results["epigenome"])
        + len(quick_report.cost_results["epigenome"]))
    assert "**Overall:" in text


def test_all_pass_reflects_verdicts(quick_report):
    # Construct a report object with forced verdicts.
    fake = ReproductionReport(
        sweeps={}, table1_text="", table1_matches={"a": True},
        shape_results={"a": [("claim", True)]},
        cost_results={"a": [("claim", True)]}, anchors={})
    assert fake.all_pass
    fake.shape_results["a"].append(("bad", False))
    assert not fake.all_pass


def test_progress_callback_invoked():
    messages = []
    factory = lambda app: build_synthetic(  # noqa: E731
        n_tasks=6, width=6, cpu_seconds=1.0, seed=0)
    build_report(apps=("epigenome",), workflow_factory=factory,
                 progress=messages.append)
    assert any("profiling" in m for m in messages)
    assert any("sweeping" in m for m in messages)
