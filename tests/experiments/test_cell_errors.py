"""Failing sweep cells: CellError, keep_going, bundles, event log."""

import io

import pytest

from repro.apps import build_synthetic
from repro.experiments import (
    CellError,
    ExperimentConfig,
    ObserveOptions,
    run_sweep,
)
from repro.observe import (
    EventLogWriter,
    SweepMonitor,
    load_crash_bundles,
    read_events,
    summarize_bundle,
    validate_bundle,
    validate_event_log,
)


def small_wf(app_name="any"):
    return build_synthetic(n_tasks=12, width=4, cpu_seconds=5.0, seed=1)


def _good(**over):
    return ExperimentConfig("synthetic", "local", 1).with_(**over)


def _bad(**over):
    # Nearly every attempt crashes and the retry budget is zero, so the
    # WMS deterministically raises WorkflowFailedError for this cell.
    return _good(task_failure_rate=0.95, retries=0).with_(**over)


def _cells():
    return [_good(), _bad(), _good(seed=1)]


class TestCellError:
    def test_serial_sweep_raises_after_driving_all_cells(self):
        progressed = []
        with pytest.raises(CellError) as exc_info:
            run_sweep(_cells(), workflow_factory=small_wf,
                      observe=ObserveOptions(flight=True),
                      progress=progressed.append)
        exc = exc_info.value
        assert [f["index"] for f in exc.failures] == [1]
        assert exc.failures[0]["label"] == _bad().label
        assert exc.failures[0]["digest"] == _bad().digest()
        assert exc.failures[0]["error"]["type"] == "WorkflowFailedError"
        assert "Traceback" in exc.failures[0]["error"]["traceback"]
        # The healthy cells still ran to completion around the failure.
        assert len(progressed) == 2

    def test_message_is_one_line(self):
        with pytest.raises(CellError) as exc_info:
            run_sweep(_cells(), workflow_factory=small_wf,
                      observe=ObserveOptions(flight=True))
        message = str(exc_info.value)
        assert "\n" not in message
        assert message.startswith("1 sweep cell failed: cell 1")
        assert "WorkflowFailedError" in message

    def test_parallel_sweep_collects_same_failure(self):
        with pytest.raises(CellError) as exc_info:
            run_sweep(_cells(), workflow_factory=small_wf, jobs=3,
                      observe=ObserveOptions(flight=True))
        assert [f["index"] for f in exc_info.value.failures] == [1]

    def test_keep_going_returns_placeholders(self):
        results = run_sweep(_cells(), workflow_factory=small_wf,
                            observe=ObserveOptions(keep_going=True))
        assert [r is not None for r in results] == [True, False, True]
        healthy = [r for r in results if r is not None]
        assert all(r.makespan > 0 for r in healthy)

    def test_observed_results_match_plain_sweep(self):
        plain = run_sweep([_good(), _good(seed=1)],
                          workflow_factory=small_wf)
        observed = run_sweep([_good(), _good(seed=1)],
                             workflow_factory=small_wf,
                             observe=ObserveOptions(
                                 monitor=SweepMonitor(stream=io.StringIO()),
                                 flight=True))
        for p, o in zip(plain, observed):
            assert repr(o.makespan) == repr(p.makespan)
            assert o.summary_row() == p.summary_row()


class TestCrashBundles:
    def test_bundle_written_validates_and_summarizes(self, tmp_path):
        crash_dir = str(tmp_path / "crashes")
        with pytest.raises(CellError) as exc_info:
            run_sweep(_cells(), workflow_factory=small_wf,
                      observe=ObserveOptions(crash_dir=crash_dir))
        bundle_path = exc_info.value.failures[0]["bundle"]
        assert bundle_path is not None and bundle_path.endswith(
            "bundle.json")
        bundles = load_crash_bundles(crash_dir)
        assert len(bundles) == 1
        path, bundle = bundles[0]
        assert path == bundle_path
        assert validate_bundle(bundle) == []
        assert bundle["index"] == 1
        assert bundle["label"] == _bad().label
        # crash_dir implies the flight recorder: the ring captured the
        # kernel activity leading up to the failure.
        assert bundle["flight"]["n_seen"] > 0
        summary = summarize_bundle(bundle)
        assert "WorkflowFailedError" in summary
        assert "flight ring" in summary

    def test_no_bundle_without_crash_dir(self, tmp_path):
        with pytest.raises(CellError) as exc_info:
            run_sweep(_cells(), workflow_factory=small_wf,
                      observe=ObserveOptions(flight=True))
        assert exc_info.value.failures[0]["bundle"] is None

    def test_parallel_bundle_matches_serial_failure(self, tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        for jobs, crash_dir in ((1, serial_dir), (3, parallel_dir)):
            with pytest.raises(CellError):
                run_sweep(_cells(), workflow_factory=small_wf, jobs=jobs,
                          observe=ObserveOptions(crash_dir=crash_dir))
        (_, serial), = load_crash_bundles(serial_dir)
        (_, parallel), = load_crash_bundles(parallel_dir)
        assert parallel["digest"] == serial["digest"]
        assert parallel["error"]["type"] == serial["error"]["type"]
        # The deterministic kernel died at the same point in both runs.
        assert parallel["flight"]["n_seen"] == serial["flight"]["n_seen"]
        assert parallel["flight"]["events"] == serial["flight"]["events"]


class TestEventLog:
    def _run(self, tmp_path, jobs=1, cell_retries=0):
        events_path = str(tmp_path / "events.jsonl")
        with EventLogWriter(events_path) as events:
            monitor = SweepMonitor(events=events, stream=io.StringIO())
            observe = ObserveOptions(monitor=monitor, keep_going=True,
                                     cell_retries=cell_retries)
            run_sweep(_cells(), workflow_factory=small_wf, jobs=jobs,
                      observe=observe)
        return events_path, monitor

    def test_lifecycle_order_and_schema(self, tmp_path):
        events_path, monitor = self._run(tmp_path)
        assert validate_event_log(events_path, expect_kinds=[
            "sweep_started", "cell_scheduled", "cell_started",
            "cell_finished", "cell_failed", "sweep_finished"]) == []
        kinds = [e["kind"] for e in read_events(events_path)]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert kinds.count("cell_scheduled") == 3
        assert kinds.count("cell_finished") == 2
        assert kinds.count("cell_failed") == 1
        # cell_started is emitted retrospectively at completion, so
        # every cell still gets exactly one.
        assert kinds.count("cell_started") == 3
        assert monitor.n_started == 3

    def test_events_join_back_to_configs(self, tmp_path):
        events_path, _ = self._run(tmp_path)
        digests = {c.digest(): c.label for c in _cells()}
        for event in read_events(events_path):
            if "digest" in event:
                assert digests[event["digest"]] == event["label"]

    def test_retries_emit_cell_retried(self, tmp_path):
        events_path, monitor = self._run(tmp_path, cell_retries=2)
        retried = [e for e in read_events(events_path)
                   if e["kind"] == "cell_retried"]
        # The failing cell is deterministic, so every retry fails too
        # and the full budget is spent on cell 1 alone.
        assert [(e["index"], e["attempt"]) for e in retried] == \
            [(1, 1), (1, 2)]
        assert monitor.n_retried == 2
        assert monitor.n_failed == 1

    def test_parallel_retries_rerun_in_parent(self, tmp_path):
        events_path, monitor = self._run(tmp_path, jobs=3, cell_retries=1)
        retried = [e for e in read_events(events_path)
                   if e["kind"] == "cell_retried"]
        assert [(e["index"], e["attempt"]) for e in retried] == [(1, 1)]
        assert monitor.n_failed == 1

    def test_monitor_summary_after_sweep(self, tmp_path):
        _, monitor = self._run(tmp_path)
        summary = monitor.summary()
        assert summary["n_cells"] == 3
        assert summary["n_finished"] == 2
        assert summary["n_failed"] == 1
        assert summary["latency_max"] >= summary["latency_mean"] > 0
        assert summary["failures"][0]["index"] == 1
