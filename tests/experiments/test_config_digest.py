"""Pinned scenario digests: the content address must never drift.

``ExperimentConfig.digest()`` keys the service's content-addressed
result store.  A silent change to the canonicalization (field rename,
dict ordering, float formatting) would orphan every cached result and,
worse, could alias *different* scenarios to one digest.  These pins
make any such drift an explicit, reviewed decision: if one fails you
changed the digest function (or the config schema) and must bump the
store's story deliberately.
"""

from dataclasses import fields

import pytest

from repro.experiments import ExperimentConfig
from repro.faults.spec import FaultSpec

#: (constructor kwargs, expected sha256 hex).  Regenerate via
#: ``ExperimentConfig(**kwargs).digest()`` only when a digest change
#: is intended.
PINNED = [
    (dict(app="montage", storage="nfs", n_workers=4),
     "6a7e2f9e92ac50db61f5e017b0eb2dac9dfe3c0831ef15f877010b56a736dcfa"),
    (dict(app="epigenome", storage="s3", n_workers=8, seed=7,
          collect_traces=True),
     "64d93e25f774272eb548d6af6853d6061e570c13df2903c2e437d98c0f794b7b"),
    (dict(app="broadband", storage="glusterfs-nufa", n_workers=2,
          storage_error_rate=0.01),
     "58c974d447e4fb1b2270a0d07ca4894ed0d59b718c5c2f3061657a3ba76c7d62"),
]


@pytest.mark.parametrize("kwargs,expected", PINNED,
                         ids=[k["app"] for k, _ in PINNED])
def test_digest_is_pinned(kwargs, expected):
    assert ExperimentConfig(**kwargs).digest() == expected


def test_digest_is_sensitive_to_every_field():
    # Any field change must change the address (no two scenarios may
    # share a cache slot).  Perturb each field away from its default.
    base = ExperimentConfig("montage", "nfs", 4)
    perturbed = {
        "app": "broadband",
        "storage": "s3",
        "n_workers": 5,
        "worker_type": "m1.small",
        "nfs_server_type": "m1.small",
        "scheduler": "locality",
        "seed": 1,
        "cpu_jitter_sigma": 0.1,
        "task_failure_rate": 0.1,
        "retries": 9,
        "initialized_disks": not base.initialized_disks,
        "collect_traces": not base.collect_traces,
        "sample_interval": 123.0,
        "fault_spec": FaultSpec(storage_error_rate=0.5),
        "node_mtbf": 3600.0,
        "storage_error_rate": 0.5,
        "halt_on_failure": not base.halt_on_failure,
    }
    assert set(perturbed) == {f.name for f in fields(ExperimentConfig)}
    seen = {base.digest()}
    for field_name, value in perturbed.items():
        digest = base.with_(**{field_name: value}).digest()
        assert digest not in seen, f"digest blind to {field_name}"
        seen.add(digest)


def test_digest_survives_dict_round_trip():
    config = ExperimentConfig("epigenome", "s3", 8, seed=3,
                              storage_error_rate=0.005,
                              fault_spec=FaultSpec(node_mtbf=7200.0))
    clone = ExperimentConfig.from_dict(config.to_dict())
    assert clone == config
    assert clone.digest() == config.digest()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown"):
        ExperimentConfig.from_dict(
            dict(app="montage", storage="nfs", n_workers=1, bogus=1))
