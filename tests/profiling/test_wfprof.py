"""Tests for the wfprof analog (paper Table I)."""

import pytest

from repro.profiling import (
    ApplicationProfile,
    format_table1,
    profile_records,
)
from repro.workflow.executor import JobRecord

GB = 1e9


def rec(transformation="x", cpu=1.0, io=0.0, rd=0.0, wr=0.0, mem=0.0):
    r = JobRecord(task_id="t", transformation=transformation,
                  node="n0", submit_time=0.0)
    r.start_time, r.end_time = 0.0, cpu + io
    r.cpu_seconds = cpu
    r.read_seconds = io
    r.bytes_read, r.bytes_written = rd, wr
    r.memory_bytes = mem
    return r


def test_aggregation():
    records = [rec("a", cpu=2.0, io=1.0, rd=100, wr=50, mem=1 * GB),
               rec("a", cpu=2.0, io=1.0, rd=100, wr=50, mem=2 * GB),
               rec("b", cpu=10.0, io=0.0, mem=0.5 * GB)]
    p = profile_records("app", records)
    assert p.n_tasks == 3
    assert p.cpu_seconds == 14.0
    assert p.io_seconds == 2.0
    assert p.bytes_read == 200
    assert p.transformations["a"].count == 2
    assert p.transformations["a"].peak_memory == 2 * GB
    assert p.transformations["a"].mean_runtime == pytest.approx(3.0)


def test_cpu_bound_profile_rates_high_cpu():
    p = profile_records("cpu-app", [rec(cpu=99.0, io=1.0, mem=0.7 * GB)])
    assert p.cpu_rating == "High"
    assert p.io_rating == "Low"
    assert p.memory_rating == "Medium"


def test_io_bound_profile_rates_high_io():
    p = profile_records("io-app", [rec(cpu=1.0, io=9.0, mem=0.1 * GB)])
    assert p.io_rating == "High"
    assert p.cpu_rating == "Low"
    assert p.memory_rating == "Low"


def test_memory_weighting_by_busy_time():
    """A long-running 3 GB task defines the app even among many tiny
    short ones."""
    records = [rec(cpu=100.0, mem=3 * GB)] + \
              [rec(cpu=0.1, mem=0.1 * GB) for _ in range(50)]
    p = profile_records("mem-app", records)
    assert p.memory_rating == "High"


def test_empty_records():
    p = profile_records("empty", [])
    assert p.n_tasks == 0
    assert p.io_fraction == 0.0
    assert p.cpu_fraction == 0.0


def test_format_table1():
    p1 = profile_records("montage", [rec(cpu=1.0, io=9.0, mem=0.1 * GB)])
    p2 = profile_records("epigenome", [rec(cpu=9.0, io=0.2, mem=0.7 * GB)])
    out = format_table1([p1, p2])
    assert "TABLE I" in out
    assert "montage" in out and "High" in out


def test_ratings_dict_keys():
    p = profile_records("x", [rec()])
    assert set(p.ratings()) == {"I/O", "Memory", "CPU"}


# ------------------------------------------------------- threshold edges
#
# Ratings are >= HIGH -> "High", < LOW -> "Low", "Medium" between, so a
# value sitting exactly on a threshold must land on the inclusive side.

def _profile(io_s=0.5, cpu_s=0.5, mem=0.5 * GB):
    """A profile with exact busy-time split and weighted memory.

    Keeping ``io_s + cpu_s == 1.0`` makes the fractions equal the
    inputs bit-for-bit, so thresholds can be probed exactly.
    """
    return ApplicationProfile(
        name="edge", n_tasks=1,
        cpu_seconds=cpu_s,
        io_seconds=io_s,
        bytes_read=0.0, bytes_written=0.0,
        weighted_memory=mem,
    )


def test_io_fraction_exactly_at_high_threshold_is_high():
    from repro.profiling.wfprof import IO_HIGH
    p = _profile(io_s=IO_HIGH, cpu_s=1.0 - IO_HIGH)
    assert p.io_fraction == IO_HIGH
    assert p.io_rating == "High"


def test_io_fraction_exactly_at_low_threshold_is_medium():
    from repro.profiling.wfprof import IO_LOW
    p = _profile(io_s=IO_LOW, cpu_s=1.0 - IO_LOW)
    assert p.io_fraction == IO_LOW
    assert p.io_rating == "Medium"
    just_below = IO_LOW - 1e-9
    assert _profile(io_s=just_below, cpu_s=1.0 - just_below).io_rating == "Low"


def test_cpu_fraction_exactly_at_thresholds():
    from repro.profiling.wfprof import CPU_HIGH, CPU_LOW
    assert _profile(cpu_s=CPU_HIGH, io_s=1.0 - CPU_HIGH).cpu_rating == "High"
    assert _profile(cpu_s=CPU_LOW, io_s=1.0 - CPU_LOW).cpu_rating == "Medium"
    just_below = CPU_LOW - 1e-9
    assert _profile(cpu_s=just_below,
                    io_s=1.0 - just_below).cpu_rating == "Low"


def test_memory_exactly_at_thresholds():
    from repro.profiling.wfprof import MEM_HIGH, MEM_LOW
    assert _profile(mem=MEM_HIGH).memory_rating == "High"
    assert _profile(mem=MEM_LOW).memory_rating == "Medium"
    assert _profile(mem=MEM_LOW * (1 - 1e-12)).memory_rating == "Low"


def test_zero_task_profile_rates_low_everywhere():
    p = profile_records("empty", [])
    assert p.busy_seconds == 0.0
    assert p.ratings() == {"I/O": "Low", "Memory": "Low", "CPU": "Low"}
    assert p.transformations == {}
    # And it still renders without dividing by zero.
    assert "empty" in format_table1([p])


def test_zero_duration_records_do_not_crash_weighting():
    p = profile_records("zd", [rec(cpu=0.0, io=0.0, mem=2 * GB)])
    assert p.weighted_memory == 0.0
    assert p.memory_rating == "Low"
    assert p.transformations["x"].mean_runtime == 0.0
