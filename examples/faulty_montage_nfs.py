#!/usr/bin/env python
"""Break the cluster on purpose: Montage on NFS under fault load.

Three acts, all bit-for-bit reproducible per seed:

1. a clean baseline of (down-scaled) Montage on NFS with 4 workers;
2. the same cell with a node crash mid-run, a 2-minute NFS outage, and
   a 1% transient storage error rate — the workflow still completes,
   just slower, and the fault report shows what it survived;
3. a rescue-DAG demo: a run degraded to a partial result checkpoints
   its completed jobs, then a resume re-executes only the remainder.

Run:
    python examples/faulty_montage_nfs.py
"""

from repro.apps import build_montage
from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import FaultSpec, NodeCrash, OutageWindow, RescueLog

SEED = 11


def workflow():
    # The paper-sized Montage (10 429 tasks) works too but takes
    # minutes; a 1-degree mosaic shows the same recovery in seconds.
    return build_montage(degrees=1.0)


def main() -> None:
    # -- act 1: clean baseline -------------------------------------------
    base_cfg = ExperimentConfig("montage", "nfs", 4, seed=SEED)
    base = run_experiment(base_cfg, workflow=workflow())
    print(f"baseline  : makespan {base.makespan:8.1f} s   "
          f"${base.cost.per_hour_total:.2f}/h")

    # -- act 2: crash + outage + flaky RPCs ------------------------------
    spec = FaultSpec(
        node_crashes=[NodeCrash("worker-1", at=60.0)],     # lose a worker early
        storage_outages=[OutageWindow(90.0, 210.0)],  # NFS down 2 minutes
        storage_error_rate=0.01,                      # 1% transient errors
    )
    faulty_cfg = ExperimentConfig("montage", "nfs", 4, seed=SEED,
                                  fault_spec=spec, retries=10)
    faulty = run_experiment(faulty_cfg, workflow=workflow())
    fr = faulty.faults
    print(f"faulty    : makespan {faulty.makespan:8.1f} s   "
          f"${faulty.cost.per_hour_total:.2f}/h   "
          f"({faulty.makespan / base.makespan:.2f}x inflation)")
    print(f"  survived: {fr.node_crashes} node crash "
          f"(jobs evicted: {fr.jobs_evicted}), "
          f"{fr.outage_seconds:.0f} s outage, "
          f"{fr.storage_transient_errors} transient errors, "
          f"{fr.storage_retries} retries, "
          f"{fr.storage_recoveries} recoveries, "
          f"{fr.storage_giveups} giveups")
    assert len({r.task_id for r in faulty.run.records if not r.failed}) \
        == len({r.task_id for r in base.run.records})

    # -- act 3: partial result + rescue-DAG resume -----------------------
    log = RescueLog()  # pass a path to persist across processes
    broken_cfg = ExperimentConfig(
        "montage", "nfs", 4, seed=SEED,
        task_failure_rate=0.08, retries=0,   # some jobs fail permanently
        halt_on_failure=False,               # ...but degrade, don't halt
    )
    broken = run_experiment(broken_cfg, workflow=workflow(), rescue=log)
    print(f"partial   : {len(log)} jobs checkpointed, "
          f"{len(broken.run.abandoned_jobs)} abandoned "
          f"(partial={broken.run.partial})")

    resumed = run_experiment(ExperimentConfig("montage", "nfs", 4,
                                              seed=SEED),
                             workflow=workflow(), rescue=log)
    print(f"resume    : re-executed {len(resumed.run.records)} jobs, "
          f"rescued {len(resumed.run.rescued_jobs)} from the log, "
          f"makespan {resumed.makespan:8.1f} s "
          f"(vs {base.makespan:.1f} s from scratch)")
    assert not resumed.run.partial


if __name__ == "__main__":
    main()
