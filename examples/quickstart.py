#!/usr/bin/env python
"""Quickstart: run one workflow on one storage system and read the bill.

This reproduces a single cell of the paper's evaluation matrix — the
Epigenome workflow on GlusterFS (NUFA) with a 4-node virtual cluster —
and prints the numbers the paper reports for it: the makespan and the
cost under Amazon's per-hour billing vs hypothetical per-second billing.

Run:
    python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment


def main() -> None:
    config = ExperimentConfig(
        app="epigenome",             # the paper's CPU-bound application
        storage="glusterfs-nufa",    # one of the five data-sharing options
        n_workers=4,                 # 4 x c1.xlarge = 32 cores
    )
    print(f"running {config.label} ...")
    result = run_experiment(config)

    print(f"\nmakespan: {result.makespan:,.0f} s "
          f"({result.makespan / 3600:.2f} h)")
    print(f"jobs executed: {result.run.n_jobs}")
    print(f"I/O fraction of task time: {result.run.io_fraction():.1%}")

    print("\ncost:")
    print(f"  per-hour billing (what Amazon charges): "
          f"${result.cost.per_hour_total:.2f}")
    print(f"  per-second billing (hypothetical):      "
          f"${result.cost.per_second_total:.2f}")

    stats = result.run.storage_stats
    print("\nstorage activity:")
    print(f"  {stats.reads:,} reads ({stats.bytes_read / 1e9:.1f} GB), "
          f"{stats.writes:,} writes ({stats.bytes_written / 1e9:.1f} GB)")
    print(f"  {stats.remote_reads:,} reads crossed the network; "
          f"{stats.cache_hits:,} were served from caches")

    print("\nload balance (jobs per node):")
    for node, count in sorted(result.run.per_node_job_counts().items()):
        print(f"  {node}: {count}")


if __name__ == "__main__":
    main()
