#!/usr/bin/env python
"""Cost planner: what is the cheapest way to run a workflow on EC2?

The paper's §VI conclusions, interactively: adding nodes almost never
reduces cost (speedup would have to be superlinear), partial hours are
rounded up so short runs waste money, and running many workflows on one
provisioned cluster amortises the rounding.

This example prices a chosen application across storage systems and
cluster sizes, prints the cheapest option under both billing models,
and quantifies the multi-workflow amortisation the paper recommends
("provision a single virtual cluster and use it to run multiple
workflows in succession").

Run:
    python examples/cost_planner.py [--app epigenome] [--workflows 5]
"""

import argparse
import math
import sys

from repro import paper_matrix, run_sweep
from repro.apps import build_broadband, build_epigenome, build_montage
from repro.experiments.results import cost_matrix, format_figure_table

QUICK_BUILDERS = {
    # Scaled-down instances so the sweep completes in seconds.
    "montage": lambda: build_montage(degrees=2.0),
    "epigenome": lambda: build_epigenome(chunks_per_lane=[6, 6, 6]),
    "broadband": lambda: build_broadband(n_sources=2, n_sites=4),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--app", default="epigenome",
                        choices=sorted(QUICK_BUILDERS))
    parser.add_argument("--workflows", type=int, default=5,
                        help="back-to-back workflows for amortisation")
    parser.add_argument("--full", action="store_true",
                        help="paper-sized workflow (slower)")
    args = parser.parse_args(argv)

    factory = (lambda _: QUICK_BUILDERS[args.app]()) if not args.full \
        else None
    results = run_sweep(
        paper_matrix(args.app), workflow_factory=factory,
        progress=lambda r: print(f"  {r.label}: ${r.cost.per_hour_total:.2f}"
                                 f" / {r.makespan:,.0f}s", file=sys.stderr))

    hourly = cost_matrix(results, per="hour")
    secondly = cost_matrix(results, per="second")
    print()
    print(format_figure_table(hourly, f"{args.app}: cost, per-hour billing",
                              value_format="{:8.2f}", unit="$"))
    print()
    print(format_figure_table(secondly, f"{args.app}: cost, per-second billing",
                              value_format="{:8.2f}", unit="$"))

    cheapest_h = min(hourly, key=hourly.get)
    cheapest_s = min(secondly, key=secondly.get)
    print(f"\ncheapest (per-hour):   {cheapest_h[0]} @ {cheapest_h[1]} "
          f"node(s) -> ${hourly[cheapest_h]:.2f}")
    print(f"cheapest (per-second): {cheapest_s[0]} @ {cheapest_s[1]} "
          f"node(s) -> ${secondly[cheapest_s]:.2f}")

    # Amortisation: run k workflows back-to-back on one cluster vs
    # provisioning per workflow (the paper's closing recommendation).
    by_cell = {(r.config.storage, r.config.n_workers): r for r in results}
    r = by_cell[cheapest_h]
    k = args.workflows
    # $ per hour of the whole cluster (workers + any NFS server).
    cluster_hour_rate = r.cost.resource.per_second / r.makespan * 3600.0
    fees = (r.cost.s3_fees.total if r.cost.s3_fees else 0.0) * k
    separate = k * r.cost.per_hour_total
    together_hours = math.ceil(k * r.makespan / 3600.0)
    together = together_hours * cluster_hour_rate + fees
    print(f"\nrunning {k} workflows back-to-back on one cluster:")
    print(f"  provisioned per workflow: ${separate:.2f}")
    print(f"  single provisioned cluster: ${together:.2f} "
          f"({(1 - together / separate):.0%} saved by amortising "
          f"rounded-up hours)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
