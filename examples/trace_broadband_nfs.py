#!/usr/bin/env python
"""Watch the NFS server saturate under Broadband — with telemetry.

The paper's most striking negative result (§V.B) is that Broadband on
NFS gets *slower* going from 2 to 4 workers.  The makespans alone only
show the symptom; the telemetry layer shows the mechanism.  This
example runs the (down-scaled) cell at both sizes with
``collect_traces=True`` and prints:

* the NFS server's sustained RPC utilization at each size — the
  saturation signal itself;
* an ASCII heatmap of server load over time, globally normalized so
  the two runs are directly comparable;
* the per-node job Gantt and the top task-duration quantiles;
* a Chrome trace of the 4-worker run for chrome://tracing / Perfetto.

Run:
    python examples/trace_broadband_nfs.py
"""

from repro import ExperimentConfig, run_experiment
from repro.apps import build_broadband
from repro.telemetry import (
    Timeline,
    render_heatmap,
    render_node_gantt,
    write_chrome_trace,
)

TRACE_OUT = "broadband_nfs_4.trace.json"


def run_cell(n_workers):
    config = ExperimentConfig(
        "broadband", "nfs", n_workers,
        collect_traces=True,     # metrics + spans + utilization sampler
        sample_interval=5.0,
    )
    # The paper-sized Broadband (768 tasks) works too but takes a few
    # minutes; a 2x4 instance shows the same saturation in seconds.
    workflow = build_broadband(n_sources=2, n_sites=4)
    print(f"running {config.label} ...")
    return run_experiment(config, workflow=workflow)


def main() -> None:
    r2 = run_cell(2)
    r4 = run_cell(4)

    print(f"\nmakespan:  2 workers {r2.makespan:,.0f} s   "
          f"4 workers {r4.makespan:,.0f} s")

    # -- the saturation signal -------------------------------------------
    load2 = r2.timeline.mean("nfs.rpc_util")
    load4 = r4.timeline.mean("nfs.rpc_util")
    print(f"NFS server sustained RPC utilization:  "
          f"2 workers {load2:.0%}   4 workers {load4:.0%}")
    print(f"peak RPC queue depth:                  "
          f"2 workers {r2.timeline.max('nfs.rpc_queue'):.0f}   "
          f"4 workers {r4.timeline.max('nfs.rpc_queue'):.0f}")

    # Merge both runs' server series onto one chart with a shared scale,
    # so the rows compare magnitudes directly.  The longer (2-worker)
    # run goes last so the chart's time range covers both runs.
    merged = Timeline()
    for t, v in zip(r4.timeline.times, r4.timeline.values("nfs.rpc_util")):
        merged.add_sample(t, {"4 workers": v})
    for t, v in zip(r2.timeline.times, r2.timeline.values("nfs.rpc_util")):
        merged.add_sample(t, {"2 workers": v})
    print()
    print(render_heatmap(merged, series=["2 workers", "4 workers"],
                         width=60, normalize="global",
                         title="nfs.rpc_util (dark = saturated)"))

    # -- where the time goes ---------------------------------------------
    print()
    print(render_node_gantt(r4.spans, category="job",
                            title="4-worker run: per-node job concurrency"))

    dur = r4.metrics.histogram("task_duration_seconds")
    print("\n4-worker task durations by transformation:")
    for labels in sorted(dur.label_sets(), key=lambda d: str(d)):
        print(f"  {labels['transformation']:<16}"
              f"n={dur.count(**labels):<4}  "
              f"p50 {dur.quantile(0.5, **labels):8.1f} s   "
              f"p99 {dur.quantile(0.99, **labels):8.1f} s")

    # -- full trace for interactive digging ------------------------------
    n = write_chrome_trace(TRACE_OUT, r4.spans)
    print(f"\nwrote {n} spans to {TRACE_OUT} "
          "(open in chrome://tracing or https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
