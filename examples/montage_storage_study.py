#!/usr/bin/env python
"""Storage-system comparison for Montage — the paper's Fig. 2 in miniature.

Sweeps the I/O-bound Montage workflow across all five data-sharing
options and 1-8 worker nodes, prints the makespan table and chart, and
evaluates the paper's qualitative claims (GlusterFS fastest, NFS good
with few clients, S3/PVFS hurt by the many small files).

The full 8-degree workflow (10,429 tasks) takes a few minutes of wall
time to sweep; pass ``--quick`` to use a 3-degree mosaic instead.

Run:
    python examples/montage_storage_study.py [--quick]
"""

import argparse
import sys

from repro import paper_matrix, run_sweep
from repro.apps import build_montage
from repro.experiments.paper import check_shapes
from repro.experiments.results import (
    format_bar_chart,
    format_figure_table,
    makespan_matrix,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="3-degree mosaic instead of the paper's 8")
    args = parser.parse_args(argv)

    degrees = 3.0 if args.quick else 8.0
    factory = lambda app: build_montage(degrees=degrees)  # noqa: E731
    wf = factory("montage")
    print(f"workflow: {wf.describe()}\n")

    cells = paper_matrix("montage")
    results = run_sweep(
        cells, workflow_factory=factory,
        progress=lambda r: print(f"  {r.label}: {r.makespan:,.0f} s",
                                 file=sys.stderr))
    matrix = makespan_matrix(results)

    print()
    print(format_figure_table(
        matrix, title=f"Montage ({degrees:g} deg) makespan by storage "
                      f"system and cluster size"))
    print()
    print(format_bar_chart(matrix, title="as a chart:"))

    if not args.quick:
        print("\npaper shape checks (Fig. 2):")
        for check, passed in check_shapes("montage", matrix):
            print(f"  [{'PASS' if passed else 'FAIL'}] {check.claim}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
