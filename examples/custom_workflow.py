#!/usr/bin/env python
"""Bring your own workflow: define a DAG and compare storage options.

Shows the lower-level API the paper-reproduction harness is built on:
construct a :class:`~repro.Workflow` by hand (here: a map-shuffle-reduce
analysis over a shared input archive), deploy a cluster + storage
system yourself, and execute it with the Pegasus-like WMS — including
trying the data-aware scheduler the paper hypothesises in §IV.A.

Run:
    python examples/custom_workflow.py
"""

from repro import Task, Workflow
from repro.cloud import EC2Cloud
from repro.simcore import Environment
from repro.storage import make_storage
from repro.workflow import PegasusWMS

MB = 1_000_000


def build_analysis_workflow(n_mappers: int = 32,
                            n_reducers: int = 4) -> Workflow:
    """A map-shuffle-reduce DAG with a shared reference dataset."""
    wf = Workflow("custom-analysis")
    wf.add_file("archive.dat", 2_000 * MB, is_input=True)
    wf.add_file("reference.db", 500 * MB, is_input=True)

    partition_outputs = []
    for m in range(n_mappers):
        out = f"part_{m}.dat"
        wf.add_file(out, 40 * MB)
        partition_outputs.append(out)
        # Every mapper reads the shared reference — cache-friendly on
        # S3, a hotspot for a central server.
        wf.add_task(Task(f"map_{m}", "map", cpu_seconds=45.0,
                         memory_bytes=600 * MB,
                         inputs=["archive.dat", "reference.db"],
                         outputs=[out]))

    reduce_outputs = []
    for r in range(n_reducers):
        out = f"result_{r}.dat"
        wf.add_file(out, 10 * MB)
        reduce_outputs.append(out)
        wf.add_task(Task(f"reduce_{r}", "reduce", cpu_seconds=60.0,
                         memory_bytes=1_500 * MB,
                         inputs=partition_outputs[r::n_reducers],
                         outputs=[out]))

    wf.add_file("report.txt", 1 * MB)
    wf.add_task(Task("report", "report", cpu_seconds=10.0,
                     memory_bytes=200 * MB,
                     inputs=reduce_outputs, outputs=["report.txt"]))
    return wf


def run_once(storage_name: str, scheduler: str = "fifo") -> float:
    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", 4)
    nfs_server = cloud.launch("m1.xlarge", name="nfs-server") \
        if storage_name == "nfs" else None
    storage = make_storage(storage_name, env, cloud=cloud,
                           nfs_server=nfs_server)
    storage.deploy(workers)
    wms = PegasusWMS(env, workers, storage, scheduler=scheduler)
    run = wms.execute(build_analysis_workflow())
    return run.makespan


def main() -> None:
    wf = build_analysis_workflow()
    print(f"workflow: {wf.describe()}")
    print(f"critical-path depth: {max(wf.levels().values()) + 1} levels\n")

    print(f"{'storage':<24}{'makespan':>12}")
    for name in ("s3", "nfs", "glusterfs-nufa", "glusterfs-distribute",
                 "pvfs"):
        makespan = run_once(name)
        print(f"{name:<24}{makespan:>10.0f} s")

    print("\nscheduler ablation on S3 (paper §IV.A: 'a more data-aware "
          "scheduler could potentially improve workflow performance'):")
    for sched in ("fifo", "locality"):
        makespan = run_once("s3", scheduler=sched)
        print(f"  {sched:<10} {makespan:>10.0f} s")


if __name__ == "__main__":
    main()
